//! Cross-request batch coalescing: [`MeshBatcher`] merges mesh passes
//! submitted by *independent callers* (e.g. concurrent server requests)
//! into single backend batches, so a serving layer inherits the panel
//! backend's batching gains even when each individual request carries
//! only a handful of tiles.
//!
//! The design leans entirely on the [`MeshBackend`](crate::MeshBackend)
//! equivalence contract: every backend is bit-identical *per vector*,
//! independent of batch composition, so concatenating two requests'
//! tiles into one `forward_batch` call and splitting the outputs back
//! apart yields exactly the bytes each request would have produced
//! alone. Coalescing is therefore invisible to callers — it changes
//! throughput, never results.
//!
//! Submissions are grouped by [`BatchKey`] (a caller-chosen model
//! identity plus a lane discriminating the mesh being applied). A group
//! flushes when its tile count reaches the batch limit (on the
//! submitting thread) or when its deadline expires (on the batcher's
//! timer thread). A zero deadline disables coalescing: every submission
//! flushes immediately, which is the per-request dispatch mode
//! benchmarks compare against.

use crate::BackendKind;
use qn_metrics::{Counter, Histogram, Registry};
use qn_photonic::Mesh;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a group left the queue and executed. Every flush is attributed
/// to exactly one cause, so the per-cause counters in
/// [`BatcherMetrics`] always sum to the total number of flushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// The group reached the batch tile limit.
    Full,
    /// The group's coalescing deadline expired on the timer thread.
    Deadline,
    /// A submitter flushed early — the eager hint, or a batcher whose
    /// configuration disables coalescing entirely.
    Eager,
    /// The batcher was dropped and drained its pending groups.
    Drain,
}

impl FlushCause {
    /// Stable label value used in metric keys.
    pub fn label(self) -> &'static str {
        match self {
            FlushCause::Full => "full",
            FlushCause::Deadline => "deadline",
            FlushCause::Eager => "eager",
            FlushCause::Drain => "drain",
        }
    }
}

/// Per-submission flush attribution, delivered with the results via
/// [`BatchHandle::wait_info`]: why the group executed, how big the
/// merged batch was, and how the submitter's latency split between
/// queueing and the shared backend pass. Pure observability — the
/// values never influence flush decisions or outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchInfo {
    /// Why the group containing this submission flushed.
    pub cause: FlushCause,
    /// Total tiles in the executed batch (across all submitters).
    pub batch_tiles: usize,
    /// Nanoseconds this submission waited in the queue before its
    /// group's flush began.
    pub queued_ns: u64,
    /// Nanoseconds the shared backend pass took.
    pub run_ns: u64,
}

/// Telemetry handles a [`MeshBatcher`] updates on every flush: a
/// histogram of flushed batch sizes (in tiles) and one counter per
/// [`FlushCause`]. All handles live in the [`Registry`] the metrics
/// were built from, so exposition picks them up automatically.
#[derive(Debug, Clone)]
pub struct BatcherMetrics {
    /// Tiles per executed batch (`batch_flush_tiles`).
    pub flush_tiles: Arc<Histogram>,
    /// Flush counters indexed by cause
    /// (`batch_flushes_total{cause=...}`).
    causes: [Arc<Counter>; 4],
}

impl BatcherMetrics {
    /// Register the batcher's metrics in `registry` (idempotent —
    /// re-registering returns the same handles).
    pub fn new(registry: &Registry) -> Self {
        let cause =
            |c: FlushCause| registry.counter_with("batch_flushes_total", &[("cause", c.label())]);
        BatcherMetrics {
            flush_tiles: registry.histogram("batch_flush_tiles"),
            causes: [
                cause(FlushCause::Full),
                cause(FlushCause::Deadline),
                cause(FlushCause::Eager),
                cause(FlushCause::Drain),
            ],
        }
    }

    /// The flush counter for `cause`.
    pub fn flushes(&self, cause: FlushCause) -> &Counter {
        &self.causes[match cause {
            FlushCause::Full => 0,
            FlushCause::Deadline => 1,
            FlushCause::Eager => 2,
            FlushCause::Drain => 3,
        }]
    }

    fn record(&self, tiles: usize, cause: FlushCause) {
        self.flush_tiles.observe(tiles as u64);
        self.flushes(cause).inc();
    }
}

/// Supplies the mesh a batch group executes against. Implementors wrap
/// whatever owns the mesh (e.g. a cached codec) so the mesh stays alive
/// until the group flushes, regardless of which thread performs the
/// flush.
pub trait MeshSource: Send + Sync {
    /// The mesh every submission under this source's key runs through.
    fn mesh(&self) -> &Mesh;
}

/// Groups submissions that may be coalesced into one backend pass.
///
/// Two submissions with equal keys **must** reference bit-identical
/// meshes (the first submission's [`MeshSource`] executes the whole
/// group). Content-addressed model ids satisfy this by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Content-addressed model identity.
    pub model: u64,
    /// Which of the model's meshes is applied (e.g. 0 = compression
    /// forward, 1 = reconstruction forward).
    pub lane: u8,
}

/// A pending submission's receipt: resolves to the mesh outputs for
/// exactly the vectors that were submitted, in submission order.
#[derive(Debug)]
pub struct BatchHandle {
    rx: Receiver<(Vec<Vec<f64>>, BatchInfo)>,
}

impl BatchHandle {
    /// Block until the batch containing this submission has flushed.
    /// Returns `None` only if the batcher was torn down (or a flush
    /// panicked) before delivering results.
    pub fn wait(self) -> Option<Vec<Vec<f64>>> {
        self.rx.recv().ok().map(|(outs, _)| outs)
    }

    /// [`BatchHandle::wait`] plus the flush attribution for this
    /// submission (cause, merged batch size, queue/run split).
    pub fn wait_info(self) -> Option<(Vec<Vec<f64>>, BatchInfo)> {
        self.rx.recv().ok()
    }
}

/// One caller's pending vectors plus the channel its results go back on.
struct Entry {
    vecs: Vec<Vec<f64>>,
    tx: SyncSender<(Vec<Vec<f64>>, BatchInfo)>,
    queued_at: Instant,
}

/// All pending submissions for one (model, lane) pair.
struct Group {
    source: Arc<dyn MeshSource>,
    entries: Vec<Entry>,
    tiles: usize,
    deadline_at: Instant,
}

struct State {
    groups: HashMap<BatchKey, Group>,
}

struct Shared {
    state: Mutex<State>,
    cond: Condvar,
    backend: BackendKind,
    max_tiles: usize,
    deadline: Duration,
    shutdown: AtomicBool,
    metrics: Option<BatcherMetrics>,
}

impl Shared {
    /// Execute one group as a single backend pass and fan results back
    /// out to every submitter. Runs outside the state lock.
    fn flush(&self, group: Group, cause: FlushCause) {
        if let Some(m) = &self.metrics {
            m.record(group.tiles, cause);
        }
        let counts: Vec<usize> = group.entries.iter().map(|e| e.vecs.len()).collect();
        let mut all: Vec<Vec<f64>> = Vec::with_capacity(group.tiles);
        let mut txs = Vec::with_capacity(group.entries.len());
        let flush_started = Instant::now();
        for entry in group.entries {
            all.extend(entry.vecs);
            let queued_ns = flush_started
                .saturating_duration_since(entry.queued_at)
                .as_nanos() as u64;
            txs.push((entry.tx, queued_ns));
        }
        let mut outs = self
            .backend
            .backend()
            .forward_batch(group.source.mesh(), &all);
        let run_ns = flush_started.elapsed().as_nanos() as u64;
        for (count, (tx, queued_ns)) in counts.into_iter().zip(txs) {
            let rest = outs.split_off(count);
            let info = BatchInfo {
                cause,
                batch_tiles: group.tiles,
                queued_ns,
                run_ns,
            };
            // A submitter that gave up waiting is not an error.
            let _ = tx.send((std::mem::replace(&mut outs, rest), info));
        }
    }
}

/// Coalesces mesh-pass submissions from many threads into shared
/// backend batches. Cheap to share behind an `Arc`; dropping the last
/// reference flushes pending groups and joins the timer thread.
pub struct MeshBatcher {
    shared: Arc<Shared>,
    timer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MeshBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeshBatcher")
            .field("backend", &self.shared.backend)
            .field("max_tiles", &self.shared.max_tiles)
            .field("deadline", &self.shared.deadline)
            .finish()
    }
}

impl MeshBatcher {
    /// A batcher flushing through `backend` whenever a group reaches
    /// `max_tiles` vectors or has waited `deadline` since it opened.
    /// `deadline == 0` (or `max_tiles <= 1`) flushes every submission
    /// immediately — per-request dispatch with no coalescing.
    pub fn new(backend: BackendKind, max_tiles: usize, deadline: Duration) -> Self {
        Self::with_metrics(backend, max_tiles, deadline, None)
    }

    /// [`MeshBatcher::new`] with telemetry: when `metrics` is supplied
    /// every flush records its batch size and cause. Instrumentation
    /// never changes flush decisions or results.
    pub fn with_metrics(
        backend: BackendKind,
        max_tiles: usize,
        deadline: Duration,
        metrics: Option<BatcherMetrics>,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                groups: HashMap::new(),
            }),
            cond: Condvar::new(),
            backend,
            max_tiles: max_tiles.max(1),
            deadline,
            shutdown: AtomicBool::new(false),
            metrics,
        });
        let timer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mesh-batcher".into())
                .spawn(move || timer_loop(&shared))
                .expect("spawn batcher timer thread")
        };
        MeshBatcher {
            shared,
            timer: Some(timer),
        }
    }

    /// The backend every flush runs through.
    pub fn backend(&self) -> BackendKind {
        self.shared.backend
    }

    /// Whether submissions may be coalesced across callers.
    pub fn coalesces(&self) -> bool {
        !self.shared.deadline.is_zero() && self.shared.max_tiles > 1
    }

    /// Queue `vecs` for a forward pass through `source`'s mesh,
    /// coalesced with any other pending submissions under `key`.
    ///
    /// The returned handle resolves (via [`BatchHandle::wait`]) to the
    /// outputs for exactly these vectors, in order, bit-identical to a
    /// standalone `forward_batch` call.
    pub fn submit(
        &self,
        key: BatchKey,
        source: Arc<dyn MeshSource>,
        vecs: Vec<Vec<f64>>,
    ) -> BatchHandle {
        self.submit_with(key, source, vecs, false)
    }

    /// [`MeshBatcher::submit`] with an **eager** hint: when `eager` is
    /// true the group flushes immediately after this submission joins
    /// it (merging with anything already pending under `key`) instead
    /// of waiting for batch-full or the deadline. Callers pass the
    /// hint when they know no other submission is on its way — e.g. a
    /// server whose connection tracking shows this is the only request
    /// in flight — so a solo caller never pays the full deadline.
    /// Results are bit-identical either way; the hint only moves the
    /// flush earlier.
    pub fn submit_with(
        &self,
        key: BatchKey,
        source: Arc<dyn MeshSource>,
        vecs: Vec<Vec<f64>>,
        eager: bool,
    ) -> BatchHandle {
        let (tx, rx) = mpsc::sync_channel(1);
        if vecs.is_empty() {
            let info = BatchInfo {
                cause: FlushCause::Eager,
                batch_tiles: 0,
                queued_ns: 0,
                run_ns: 0,
            };
            let _ = tx.send((Vec::new(), info));
            return BatchHandle { rx };
        }
        let tiles = vecs.len();
        let flush_now = {
            let mut st = self.shared.state.lock().expect("batcher state lock");
            let group = st.groups.entry(key).or_insert_with(|| Group {
                source,
                entries: Vec::new(),
                tiles: 0,
                deadline_at: Instant::now() + self.shared.deadline,
            });
            group.entries.push(Entry {
                vecs,
                tx,
                queued_at: Instant::now(),
            });
            group.tiles += tiles;
            if eager || group.tiles >= self.shared.max_tiles || !self.coalesces() {
                // Batch-full takes attribution precedence: an eager
                // hint that also filled the batch counts as full.
                let cause = if group.tiles >= self.shared.max_tiles {
                    FlushCause::Full
                } else {
                    FlushCause::Eager
                };
                st.groups.remove(&key).map(|g| (g, cause))
            } else {
                self.shared.cond.notify_one();
                None
            }
        };
        if let Some((group, cause)) = flush_now {
            self.shared.flush(group, cause);
        }
        BatchHandle { rx }
    }
}

impl Drop for MeshBatcher {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        if let Some(timer) = self.timer.take() {
            let _ = timer.join();
        }
    }
}

/// Deadline watcher: flushes groups whose deadline has passed, sleeps
/// until the next one, and drains everything on shutdown.
fn timer_loop(shared: &Shared) {
    let mut st = shared.state.lock().expect("batcher state lock");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let groups: Vec<Group> = st.groups.drain().map(|(_, g)| g).collect();
            drop(st);
            for group in groups {
                shared.flush(group, FlushCause::Drain);
            }
            return;
        }
        let now = Instant::now();
        let due: Vec<BatchKey> = st
            .groups
            .iter()
            .filter(|(_, g)| g.deadline_at <= now)
            .map(|(k, _)| *k)
            .collect();
        if !due.is_empty() {
            let groups: Vec<Group> = due.iter().filter_map(|k| st.groups.remove(k)).collect();
            drop(st);
            for group in groups {
                shared.flush(group, FlushCause::Deadline);
            }
            st = shared.state.lock().expect("batcher state lock");
            continue;
        }
        // With pending groups, sleep until the earliest deadline; with
        // none, park until a submit (or shutdown) notifies — no idle
        // wakeups.
        st = match st
            .groups
            .values()
            .map(|g| g.deadline_at.saturating_duration_since(now))
            .min()
        {
            Some(wait) => {
                shared
                    .cond
                    .wait_timeout(st, wait)
                    .expect("batcher state lock")
                    .0
            }
            None => shared.cond.wait(st).expect("batcher state lock"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Debug)]
    struct OwnedMesh(Mesh);

    impl MeshSource for OwnedMesh {
        fn mesh(&self) -> &Mesh {
            &self.0
        }
    }

    fn mesh(dim: usize, layers: usize, seed: u64) -> Arc<OwnedMesh> {
        Arc::new(OwnedMesh(Mesh::random(
            dim,
            layers,
            &mut StdRng::seed_from_u64(seed),
        )))
    }

    fn batch(dim: usize, n: usize, phase: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * dim + j) as f64 * 0.31 + phase).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn coalesced_submissions_match_standalone_passes_bitwise() {
        let src = mesh(8, 3, 11);
        let a = batch(8, 5, 0.0);
        let b = batch(8, 9, 1.0);
        let want_a = BackendKind::Panel.backend().forward_batch(src.mesh(), &a);
        let want_b = BackendKind::Panel.backend().forward_batch(src.mesh(), &b);

        // Large deadline so both land in one group; batch-full at 14
        // tiles forces the second submit to flush the merged group.
        let batcher = MeshBatcher::new(BackendKind::Panel, 14, Duration::from_secs(10));
        let key = BatchKey { model: 1, lane: 0 };
        let ha = batcher.submit(key, src.clone(), a);
        let hb = batcher.submit(key, src.clone(), b);
        assert_eq!(ha.wait().unwrap(), want_a);
        assert_eq!(hb.wait().unwrap(), want_b);
    }

    #[test]
    fn deadline_flushes_undersized_groups() {
        let src = mesh(6, 2, 5);
        let xs = batch(6, 3, 0.5);
        let want = BackendKind::Scalar.backend().forward_batch(src.mesh(), &xs);
        let batcher = MeshBatcher::new(BackendKind::Scalar, 1_000_000, Duration::from_millis(5));
        let handle = batcher.submit(BatchKey { model: 2, lane: 1 }, src, xs);
        assert_eq!(handle.wait().unwrap(), want);
    }

    #[test]
    fn zero_deadline_dispatches_immediately() {
        let src = mesh(4, 1, 3);
        let xs = batch(4, 2, 0.0);
        let want = BackendKind::Scalar.backend().forward_batch(src.mesh(), &xs);
        let batcher = MeshBatcher::new(BackendKind::Scalar, 1_000_000, Duration::ZERO);
        assert!(!batcher.coalesces());
        let handle = batcher.submit(BatchKey { model: 3, lane: 0 }, src, xs);
        assert_eq!(handle.wait().unwrap(), want);
    }

    #[test]
    fn different_keys_never_share_a_mesh() {
        let src_a = mesh(5, 2, 21);
        let src_b = mesh(5, 2, 22);
        let xs = batch(5, 4, 0.2);
        let want_a = BackendKind::Panel
            .backend()
            .forward_batch(src_a.mesh(), &xs);
        let want_b = BackendKind::Panel
            .backend()
            .forward_batch(src_b.mesh(), &xs);
        let batcher = MeshBatcher::new(BackendKind::Panel, 1_000_000, Duration::from_millis(5));
        let ha = batcher.submit(BatchKey { model: 10, lane: 0 }, src_a, xs.clone());
        let hb = batcher.submit(BatchKey { model: 11, lane: 0 }, src_b, xs);
        assert_eq!(ha.wait().unwrap(), want_a);
        assert_eq!(hb.wait().unwrap(), want_b);
    }

    #[test]
    fn eager_submissions_flush_without_waiting_for_the_deadline() {
        let src = mesh(6, 2, 41);
        let xs = batch(6, 3, 0.9);
        let want = BackendKind::Panel.backend().forward_batch(src.mesh(), &xs);
        // An hour-long deadline: only the eager hint can flush this
        // before the test times out.
        let batcher = MeshBatcher::new(BackendKind::Panel, 1_000_000, Duration::from_secs(3600));
        let key = BatchKey { model: 7, lane: 0 };
        let t0 = Instant::now();
        let handle = batcher.submit_with(key, src.clone(), xs, true);
        assert_eq!(handle.wait().unwrap(), want);
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "eager flush must not wait for the deadline"
        );
        // An eager submission drains anything already pending under
        // the same key, preserving per-submitter results.
        let a = batch(6, 2, 0.1);
        let b = batch(6, 4, 0.2);
        let want_a = BackendKind::Panel.backend().forward_batch(src.mesh(), &a);
        let want_b = BackendKind::Panel.backend().forward_batch(src.mesh(), &b);
        let ha = batcher.submit(key, src.clone(), a); // parks (huge deadline)
        let hb = batcher.submit_with(key, src, b, true); // flushes both
        assert_eq!(ha.wait().unwrap(), want_a);
        assert_eq!(hb.wait().unwrap(), want_b);
    }

    #[test]
    fn empty_submission_resolves_immediately() {
        let src = mesh(4, 1, 9);
        let batcher = MeshBatcher::new(BackendKind::Panel, 8, Duration::from_secs(10));
        let handle = batcher.submit(BatchKey { model: 4, lane: 0 }, src, Vec::new());
        assert_eq!(handle.wait().unwrap(), Vec::<Vec<f64>>::new());
    }

    #[test]
    fn drop_flushes_pending_groups() {
        let src = mesh(6, 2, 17);
        let xs = batch(6, 2, 0.7);
        let want = BackendKind::Panel.backend().forward_batch(src.mesh(), &xs);
        let batcher = MeshBatcher::new(BackendKind::Panel, 1_000_000, Duration::from_secs(3600));
        let handle = batcher.submit(BatchKey { model: 5, lane: 0 }, src, xs);
        drop(batcher);
        assert_eq!(handle.wait().unwrap(), want);
    }

    #[test]
    fn flush_causes_are_attributed_and_sum_to_total_flushes() {
        let registry = Registry::new();
        let metrics = BatcherMetrics::new(&registry);
        let src = mesh(6, 2, 51);
        let key = BatchKey { model: 20, lane: 0 };

        // Full: 4 tiles meet max_tiles=4 on the submitting thread.
        let batcher = MeshBatcher::with_metrics(
            BackendKind::Panel,
            4,
            Duration::from_secs(3600),
            Some(metrics.clone()),
        );
        batcher.submit(key, src.clone(), batch(6, 4, 0.0)).wait();
        assert_eq!(metrics.flushes(FlushCause::Full).get(), 1);

        // Eager: explicit hint, undersized group.
        batcher
            .submit_with(key, src.clone(), batch(6, 2, 0.1), true)
            .wait();
        assert_eq!(metrics.flushes(FlushCause::Eager).get(), 1);

        // Drain: a parked group flushed by drop.
        let parked = batcher.submit(key, src.clone(), batch(6, 1, 0.2));
        drop(batcher);
        parked.wait().unwrap();
        assert_eq!(metrics.flushes(FlushCause::Drain).get(), 1);

        // Deadline: a short-deadline batcher flushes on its timer.
        let batcher = MeshBatcher::with_metrics(
            BackendKind::Panel,
            1_000_000,
            Duration::from_millis(2),
            Some(metrics.clone()),
        );
        batcher.submit(key, src, batch(6, 3, 0.3)).wait();
        assert_eq!(metrics.flushes(FlushCause::Deadline).get(), 1);

        // Every flush carries exactly one cause, so the cause counters
        // sum to the batch-size histogram's count, and the histogram
        // saw every tile.
        let total: u64 = [
            FlushCause::Full,
            FlushCause::Deadline,
            FlushCause::Eager,
            FlushCause::Drain,
        ]
        .iter()
        .map(|&c| metrics.flushes(c).get())
        .sum();
        assert_eq!(total, 4);
        assert_eq!(metrics.flush_tiles.count(), 4);
        assert_eq!(metrics.flush_tiles.sum(), 4 + 2 + 1 + 3);
    }

    #[test]
    fn wait_info_reports_cause_and_merged_batch_size() {
        let src = mesh(6, 2, 61);
        let key = BatchKey { model: 30, lane: 0 };
        let batcher = MeshBatcher::new(BackendKind::Panel, 6, Duration::from_secs(3600));
        // Two submissions merge; the second fills the batch, so both
        // see cause=Full and the merged 6-tile size.
        let ha = batcher.submit(key, src.clone(), batch(6, 2, 0.0));
        let hb = batcher.submit(key, src.clone(), batch(6, 4, 0.5));
        let (outs_a, info_a) = ha.wait_info().unwrap();
        let (outs_b, info_b) = hb.wait_info().unwrap();
        assert_eq!(outs_a.len(), 2);
        assert_eq!(outs_b.len(), 4);
        for info in [info_a, info_b] {
            assert_eq!(info.cause, FlushCause::Full);
            assert_eq!(info.batch_tiles, 6);
        }
        // The first submitter queued at least as long as the second.
        assert!(info_a.queued_ns >= info_b.queued_ns);
        assert_eq!(info_a.run_ns, info_b.run_ns, "one shared backend pass");

        // An eager solo submission is attributed as Eager; an empty
        // one resolves with a zeroed info.
        let (_, info) = batcher
            .submit_with(key, src.clone(), batch(6, 1, 0.9), true)
            .wait_info()
            .unwrap();
        assert_eq!(info.cause, FlushCause::Eager);
        assert_eq!(info.batch_tiles, 1);
        let (outs, info) = batcher.submit(key, src, Vec::new()).wait_info().unwrap();
        assert!(outs.is_empty());
        assert_eq!(info.batch_tiles, 0);
    }

    #[test]
    fn concurrent_submitters_each_get_their_own_results() {
        let src = mesh(8, 2, 33);
        let batcher = Arc::new(MeshBatcher::new(
            BackendKind::Panel,
            64,
            Duration::from_millis(2),
        ));
        let key = BatchKey { model: 6, lane: 0 };
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let batcher = Arc::clone(&batcher);
                let src = src.clone();
                std::thread::spawn(move || {
                    let xs = batch(8, 3 + i % 4, i as f64);
                    let want = BackendKind::Scalar.backend().forward_batch(src.mesh(), &xs);
                    let got = batcher.submit(key, src.clone(), xs).wait().unwrap();
                    assert_eq!(got, want, "submitter {i}");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
