//! Content-addressed cache of precomputed [`MeshTables`].
//!
//! A mesh is static for the lifetime of a model, but backends receive it
//! by reference on every batch — they cannot know whether two calls name
//! the same model. This module gives every backend a shared,
//! process-wide table cache keyed by a fingerprint of the mesh
//! *contents* (the same content-addressing idea as the model zoo's
//! 64-bit model id): the first pass over a model pays one `sin_cos` per
//! gate to build its [`MeshTables`]; every later pass — any panel, any
//! batch, any request, any backend — reuses the cached tables and runs
//! trig-free.
//!
//! The cache holds the [`CACHE_CAP`] most recently used models (matching
//! the zoo's working-set assumption) under a `Mutex`; tables are handed
//! out as `Arc`s so eviction never invalidates an in-flight pass.

use qn_photonic::{GateOrder, Mesh, MeshTables};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cached models kept before least-recently-used eviction.
pub const CACHE_CAP: usize = 32;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// MRU-ordered (most recent last) fingerprint → tables entries.
type CacheEntries = Vec<(u64, Arc<MeshTables>)>;

fn cache() -> &'static Mutex<CacheEntries> {
    static CACHE: OnceLock<Mutex<CacheEntries>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// FNV-1a over the mesh's full parameter content: dimension, layer
/// count, and every layer's cascade direction + θ/α bit patterns. The
/// same 64-bit content-addressing scheme (and collision risk class) as
/// the codec's model id.
fn mesh_fingerprint(mesh: &Mesh) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(mesh.dim() as u64).to_le_bytes());
    eat(&(mesh.layers().len() as u64).to_le_bytes());
    for layer in mesh.layers() {
        eat(&[match layer.order() {
            GateOrder::Ascending => 0u8,
            GateOrder::Descending => 1u8,
        }]);
        for &t in layer.thetas() {
            eat(&t.to_bits().to_le_bytes());
        }
        for &a in layer.alphas() {
            eat(&a.to_bits().to_le_bytes());
        }
    }
    h
}

/// The gate tables for `mesh`, from the shared cache — built on first
/// sight, reused (and bumped to most-recently-used) afterwards.
///
/// # Panics
/// Panics when the mesh has complex gates, like every `apply_real_*`
/// path.
pub fn cached_tables(mesh: &Mesh) -> Arc<MeshTables> {
    let key = mesh_fingerprint(mesh);
    {
        let mut entries = cache().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            let entry = entries.remove(pos);
            let tables = Arc::clone(&entry.1);
            entries.push(entry);
            HITS.fetch_add(1, Ordering::Relaxed);
            return tables;
        }
    }
    // Build outside the lock: construction is the expensive part, and a
    // complex-mesh panic must not poison the cache.
    let tables = Arc::new(MeshTables::build(mesh));
    let mut entries = cache().lock().unwrap_or_else(|e| e.into_inner());
    // A racing builder may have inserted the same model meanwhile;
    // keeping either copy is correct (identical contents), keep ours.
    entries.retain(|(k, _)| *k != key);
    entries.push((key, Arc::clone(&tables)));
    if entries.len() > CACHE_CAP {
        let excess = entries.len() - CACHE_CAP;
        entries.drain(..excess);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    tables
}

/// Point-in-time counters of the shared table cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build tables.
    pub misses: u64,
    /// Models currently cached.
    pub entries: usize,
}

/// Snapshot the shared table cache's hit/miss/occupancy counters
/// (process-wide; surfaced by `qn-serve`'s STATS).
pub fn table_cache_stats() -> TableCacheStats {
    let entries = cache().lock().unwrap_or_else(|e| e.into_inner()).len();
    TableCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn repeated_lookups_share_one_build() {
        let mesh = Mesh::random(11, 3, &mut StdRng::seed_from_u64(777_001));
        let before = table_cache_stats();
        let a = cached_tables(&mesh);
        let b = cached_tables(&mesh.clone()); // same content, new allocation
        assert!(Arc::ptr_eq(&a, &b), "same model must share tables");
        let after = table_cache_stats();
        assert!(after.hits > before.hits, "second lookup must hit");
        assert_eq!(a.dim(), 11);
    }

    #[test]
    fn different_models_get_different_tables() {
        let mut rng = StdRng::seed_from_u64(777_002);
        let m1 = Mesh::random(9, 2, &mut rng);
        let m2 = Mesh::random(9, 2, &mut rng);
        assert!(!Arc::ptr_eq(&cached_tables(&m1), &cached_tables(&m2)));
        // Structural variations change the fingerprint too.
        assert!(!Arc::ptr_eq(
            &cached_tables(&m1),
            &cached_tables(&m1.reversed())
        ));
    }

    #[test]
    fn cache_is_bounded() {
        let mut rng = StdRng::seed_from_u64(777_003);
        for _ in 0..(CACHE_CAP + 10) {
            cached_tables(&Mesh::random(5, 1, &mut rng));
        }
        assert!(table_cache_stats().entries <= CACHE_CAP);
    }

    #[test]
    fn cached_tables_match_a_fresh_build() {
        let mesh = Mesh::random(8, 3, &mut StdRng::seed_from_u64(777_004));
        let cached = cached_tables(&mesh);
        assert_eq!(*cached, mesh.tables());
    }
}
