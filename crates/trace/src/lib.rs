//! `qn-trace` — the zero-dependency span-tracing core.
//!
//! [`qn-metrics`](../qn_metrics/index.html) answers "how is the server
//! doing" in aggregate; this crate answers "why was *this* request
//! slow". With cross-request batching a single request's latency mixes
//! queue wait, flush-deadline wait, the shared mesh pass and entropy
//! coding — separating those needs per-request attribution: a tree of
//! named spans with monotonic start/end times, parent links, and
//! key=value attributes (tile count, batch size, flush cause, backend
//! kind, coder). Built under the same compat-shim discipline as the
//! rest of the workspace: **std only**, no external crates.
//!
//! # Design
//!
//! - **Builder per request.** A [`TraceBuilder`] is a plain owned
//!   value — no thread-locals, no global propagation machinery. The
//!   instrumented path threads `Option<TraceBuilder>` along; untraced
//!   requests pay one branch per span site and nothing else.
//! - **Relative time.** Spans store nanosecond offsets from the trace
//!   anchor (an [`Instant`] captured when the request's first header
//!   byte arrived), so a rendered trace is self-contained and
//!   wall-clock-free. Retroactive spans ([`TraceBuilder::record`])
//!   splice in stage timings measured elsewhere — e.g. the codec's
//!   quantize/entropy breakdown — without nesting closures through
//!   the pipeline.
//! - **Recent ring + slow keep.** The [`Tracer`] sink holds two
//!   fixed-capacity buffers: a ring of the most recent completed
//!   traces, and a separate buffer that only admits traces whose root
//!   duration meets a slow threshold — so one burst of fast traffic
//!   cannot evict the slow outlier you are hunting.
//! - **Byte-stable JSON.** [`traces_json`] emits a single line with a
//!   fixed field order and integer-only numbers, so identical traces
//!   serialise to identical bytes; [`parse_traces`] reads exactly that
//!   subset back (the `qnc` client re-renders server traces locally).
//!
//! # Determinism caveat
//!
//! Span *durations* are wall-clock and not assertable; tests pin tree
//! shape, attribute plumbing, JSON bytes on fabricated traces, and
//! buffer policy — never live timings.

use std::collections::VecDeque;
use std::fmt::{self, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Handle to a span inside one [`TraceBuilder`] / [`Trace`].
///
/// Only meaningful for the builder that issued it; index 0 is always
/// the root span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    /// The root span of any trace.
    pub const ROOT: SpanId = SpanId(0);

    /// The span's index into [`Trace::spans`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// One timed, named region of a trace. `start_ns`/`end_ns` are offsets
/// from the trace anchor; `parent` is an index into the owning trace's
/// span list (`None` only for the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name, e.g. `"batch_wait"`.
    pub name: String,
    /// Parent span index; `None` for the root.
    pub parent: Option<usize>,
    /// Start offset from the trace anchor, nanoseconds.
    pub start_ns: u64,
    /// End offset from the trace anchor, nanoseconds.
    pub end_ns: u64,
    /// `key=value` annotations, in recording order.
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// The span's duration in nanoseconds (0 if end precedes start).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Look up an attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A completed span tree. `spans[0]` is the root; every other span's
/// `parent` points at an earlier index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Caller-supplied 64-bit trace id (rendered as 16 hex digits).
    pub id: u64,
    /// The span tree in recording order, root first.
    pub spans: Vec<Span>,
}

impl Trace {
    /// The root span's name (the trace name).
    pub fn name(&self) -> &str {
        &self.spans[0].name
    }

    /// Total duration: the root span's length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.spans[0].duration_ns()
    }

    /// Indices of the direct children of span `parent`, in recording
    /// order.
    pub fn children(&self, parent: usize) -> Vec<usize> {
        (0..self.spans.len())
            .filter(|&i| self.spans[i].parent == Some(parent))
            .collect()
    }

    /// Find the first span (in recording order) with the given name.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The trace id as 16 lowercase hex digits.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.id)
    }

    /// Render this trace as a single-line JSON object (see
    /// [`traces_json`] for the format contract).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 96);
        write_trace_json(&mut out, self);
        out
    }
}

/// In-progress trace: spans open, end, gain attributes, and the whole
/// tree is sealed with [`TraceBuilder::finish`].
#[derive(Debug)]
pub struct TraceBuilder {
    id: u64,
    anchor: Instant,
    spans: Vec<BuildSpan>,
}

#[derive(Debug)]
struct BuildSpan {
    name: String,
    parent: Option<usize>,
    start_ns: u64,
    end_ns: Option<u64>,
    attrs: Vec<(String, String)>,
}

impl TraceBuilder {
    /// Start a trace now; the root span opens at offset 0.
    pub fn new(id: u64, name: &str) -> TraceBuilder {
        TraceBuilder::with_anchor(id, name, Instant::now())
    }

    /// Start a trace anchored at an earlier instant (e.g. when the
    /// request's header arrived), so spans recorded from now on get
    /// offsets relative to that point. The root opens at offset 0.
    pub fn with_anchor(id: u64, name: &str, anchor: Instant) -> TraceBuilder {
        TraceBuilder {
            id,
            anchor,
            spans: vec![BuildSpan {
                name: name.to_string(),
                parent: None,
                start_ns: 0,
                end_ns: None,
                attrs: Vec::new(),
            }],
        }
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Nanoseconds elapsed since the trace anchor.
    pub fn elapsed_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Open a child span of `parent` starting now.
    pub fn begin(&mut self, parent: SpanId, name: &str) -> SpanId {
        let start = self.elapsed_ns();
        self.push(parent, name, start, None)
    }

    /// Close span `id` now. Closing an already-closed span keeps the
    /// first end time.
    pub fn end(&mut self, id: SpanId) {
        let now = self.elapsed_ns();
        let span = &mut self.spans[id.0];
        span.end_ns.get_or_insert(now);
    }

    /// Splice in a span measured elsewhere, with explicit anchor
    /// offsets. Used to attach pre-measured stage timings (e.g. the
    /// codec's quantize/entropy nanoseconds) without re-timing them.
    pub fn record(&mut self, parent: SpanId, name: &str, start_ns: u64, end_ns: u64) -> SpanId {
        self.push(parent, name, start_ns, Some(end_ns))
    }

    /// Attach a `key=value` attribute to span `id`.
    pub fn attr(&mut self, id: SpanId, key: &str, value: impl fmt::Display) {
        self.spans[id.0]
            .attrs
            .push((key.to_string(), value.to_string()));
    }

    /// Seal the trace: the root and any still-open span close now.
    pub fn finish(mut self) -> Trace {
        let now = self.elapsed_ns();
        Trace {
            id: self.id,
            spans: self
                .spans
                .drain(..)
                .map(|s| Span {
                    name: s.name,
                    parent: s.parent,
                    start_ns: s.start_ns,
                    end_ns: s.end_ns.unwrap_or(now),
                    attrs: s.attrs,
                })
                .collect(),
        }
    }

    fn push(&mut self, parent: SpanId, name: &str, start_ns: u64, end_ns: Option<u64>) -> SpanId {
        assert!(parent.0 < self.spans.len(), "parent span out of range");
        self.spans.push(BuildSpan {
            name: name.to_string(),
            parent: Some(parent.0),
            start_ns,
            end_ns,
            attrs: Vec::new(),
        });
        SpanId(self.spans.len() - 1)
    }
}

/// Sink for completed traces: a fixed-capacity ring of recent traces
/// plus an always-keep buffer for traces at or above the slow
/// threshold. Thread-safe; recording is one short mutex hold.
#[derive(Debug)]
pub struct Tracer {
    recent_cap: usize,
    slow_cap: usize,
    /// Slow threshold in nanoseconds; 0 disables slow capture.
    slow_threshold_ns: AtomicU64,
    buffers: Mutex<Buffers>,
}

#[derive(Debug, Default)]
struct Buffers {
    recent: VecDeque<Trace>,
    slow: VecDeque<Trace>,
}

impl Tracer {
    /// A tracer keeping up to `recent_cap` recent traces and
    /// `slow_cap` slow traces. Slow capture starts disabled.
    pub fn new(recent_cap: usize, slow_cap: usize) -> Tracer {
        Tracer {
            recent_cap: recent_cap.max(1),
            slow_cap: slow_cap.max(1),
            slow_threshold_ns: AtomicU64::new(0),
            buffers: Mutex::new(Buffers::default()),
        }
    }

    /// Set the slow threshold; `None` disables slow capture.
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold.map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The slow threshold in nanoseconds (0 = disabled).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Record a completed trace: always into the recent ring (evicting
    /// the oldest when full), and additionally into the slow buffer
    /// when slow capture is on and the root duration meets the
    /// threshold. The slow buffer is its own ring — fast traffic never
    /// evicts a slow trace; only a newer slow trace does.
    pub fn record(&self, trace: Trace) {
        let threshold = self.slow_threshold_ns();
        let mut buf = self.buffers.lock().unwrap();
        if threshold > 0 && trace.duration_ns() >= threshold {
            if buf.slow.len() == self.slow_cap {
                buf.slow.pop_front();
            }
            buf.slow.push_back(trace.clone());
        }
        if buf.recent.len() == self.recent_cap {
            buf.recent.pop_front();
        }
        buf.recent.push_back(trace);
    }

    /// Snapshot the recent ring, oldest first.
    pub fn recent(&self) -> Vec<Trace> {
        self.buffers
            .lock()
            .unwrap()
            .recent
            .iter()
            .cloned()
            .collect()
    }

    /// Snapshot the slow buffer, oldest first.
    pub fn slow(&self) -> Vec<Trace> {
        self.buffers.lock().unwrap().slow.iter().cloned().collect()
    }

    /// Find the newest trace with `id`, searching the recent ring
    /// first, then the slow buffer.
    pub fn find(&self, id: u64) -> Option<Trace> {
        let buf = self.buffers.lock().unwrap();
        buf.recent
            .iter()
            .rev()
            .find(|t| t.id == id)
            .or_else(|| buf.slow.iter().rev().find(|t| t.id == id))
            .cloned()
    }
}

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

/// Render a set of traces as one JSON line:
///
/// ```text
/// {"traces":[{"id":"00000000000000ff","name":"encode","duration_ns":9,
///   "spans":[{"name":"encode","parent":-1,"start_ns":0,"end_ns":9,
///   "attrs":{"tiles":"4"}},...]},...]}
/// ```
///
/// Field order is fixed, numbers are integers only, attribute order is
/// recording order — identical traces render to identical bytes.
pub fn traces_json(traces: &[Trace]) -> String {
    let mut out = String::from("{\"traces\":[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_trace_json(&mut out, t);
    }
    out.push_str("]}");
    out
}

fn write_trace_json(out: &mut String, t: &Trace) {
    let _ = write!(out, "{{\"id\":\"{:016x}\",\"name\":", t.id);
    write_json_string(out, t.name());
    let _ = write!(out, ",\"duration_ns\":{},\"spans\":[", t.duration_ns());
    for (i, s) in t.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(out, &s.name);
        let parent = s.parent.map_or(-1, |p| p as i64);
        let _ = write!(
            out,
            ",\"parent\":{parent},\"start_ns\":{},\"end_ns\":{},\"attrs\":{{",
            s.start_ns, s.end_ns
        );
        for (j, (k, v)) in s.attrs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_json_string(out, k);
            out.push(':');
            write_json_string(out, v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// JSON parsing (exactly the subset `traces_json` emits)
// ---------------------------------------------------------------------------

/// Parse a `{"traces":[...]}` document produced by [`traces_json`]
/// back into traces. This is a subset parser for the trace schema, not
/// a general JSON reader — unknown fields are rejected, which keeps
/// client and server renderings honest with each other.
pub fn parse_traces(json: &str) -> Result<Vec<Trace>, String> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    p.expect_key("traces")?;
    p.expect(b'[')?;
    let mut traces = Vec::new();
    if !p.try_consume(b']') {
        loop {
            traces.push(p.trace()?);
            if !p.try_consume(b',') {
                p.expect(b']')?;
                break;
            }
        }
    }
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(traces)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected '{}' at offset {}, found {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    fn try_consume(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_key(&mut self, key: &str) -> Result<(), String> {
        let got = self.string()?;
        if got != key {
            return Err(format!("expected key \"{key}\", found \"{got}\""));
        }
        self.expect(b':')
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code).ok_or(format!("bad \\u escape {code:04x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    self.pos -= 1;
                    let s =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn integer(&mut self) -> Result<i64, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| format!("expected integer at offset {start}"))
    }

    fn trace(&mut self) -> Result<Trace, String> {
        self.expect(b'{')?;
        self.expect_key("id")?;
        let id_hex = self.string()?;
        let id =
            u64::from_str_radix(&id_hex, 16).map_err(|_| format!("bad trace id \"{id_hex}\""))?;
        self.expect(b',')?;
        self.expect_key("name")?;
        let name = self.string()?;
        self.expect(b',')?;
        self.expect_key("duration_ns")?;
        let _ = self.integer()?;
        self.expect(b',')?;
        self.expect_key("spans")?;
        self.expect(b'[')?;
        let mut spans = Vec::new();
        if !self.try_consume(b']') {
            loop {
                spans.push(self.span()?);
                if !self.try_consume(b',') {
                    self.expect(b']')?;
                    break;
                }
            }
        }
        self.expect(b'}')?;
        if spans.is_empty() {
            return Err("trace with no spans".to_string());
        }
        if spans[0].name != name || spans[0].parent.is_some() {
            return Err("first span is not the named root".to_string());
        }
        Ok(Trace { id, spans })
    }

    fn span(&mut self) -> Result<Span, String> {
        self.expect(b'{')?;
        self.expect_key("name")?;
        let name = self.string()?;
        self.expect(b',')?;
        self.expect_key("parent")?;
        let parent = self.integer()?;
        self.expect(b',')?;
        self.expect_key("start_ns")?;
        let start_ns = self.integer()? as u64;
        self.expect(b',')?;
        self.expect_key("end_ns")?;
        let end_ns = self.integer()? as u64;
        self.expect(b',')?;
        self.expect_key("attrs")?;
        self.expect(b'{')?;
        let mut attrs = Vec::new();
        if !self.try_consume(b'}') {
            loop {
                let k = self.string()?;
                self.expect(b':')?;
                let v = self.string()?;
                attrs.push((k, v));
                if !self.try_consume(b',') {
                    self.expect(b'}')?;
                    break;
                }
            }
        }
        self.expect(b'}')?;
        let parent = match parent {
            -1 => None,
            p if p >= 0 => Some(p as usize),
            p => return Err(format!("bad parent index {p}")),
        };
        Ok(Span {
            name,
            parent,
            start_ns,
            end_ns,
            attrs,
        })
    }
}

// ---------------------------------------------------------------------------
// Tree rendering
// ---------------------------------------------------------------------------

/// Render a nanosecond quantity with an adaptive unit: `420ns`,
/// `12.3us`, `4.56ms`, `1.23s`.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Render a trace as an indented ASCII span tree, one span per line:
///
/// ```text
/// trace 00000000000000ff encode 9ns
///   frame_read +0ns 2ns
///   batch_wait +2ns 5ns cause=deadline batch_tiles=4
///     mesh_pass +4ns 2ns
/// ```
///
/// Each line is `name +start duration` followed by `key=value`
/// attributes; children indent two spaces under their parent.
pub fn render_tree(trace: &Trace) -> String {
    let mut out = format!(
        "trace {} {} {}\n",
        trace.id_hex(),
        trace.name(),
        fmt_ns(trace.duration_ns())
    );
    render_children(trace, 0, 1, &mut out);
    out
}

fn render_children(trace: &Trace, parent: usize, depth: usize, out: &mut String) {
    for i in trace.children(parent) {
        let s = &trace.spans[i];
        let _ = write!(
            out,
            "{:indent$}{} +{} {}",
            "",
            s.name,
            fmt_ns(s.start_ns),
            fmt_ns(s.duration_ns()),
            indent = depth * 2
        );
        for (k, v) in &s.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        render_children(trace, i, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    /// A hand-built trace with a known shape: root → (read, wait →
    /// mesh), fixed offsets, one attribute on `wait`.
    fn fixture(id: u64) -> Trace {
        Trace {
            id,
            spans: vec![
                Span {
                    name: "encode".into(),
                    parent: None,
                    start_ns: 0,
                    end_ns: 900,
                    attrs: vec![("tiles".into(), "4".into())],
                },
                Span {
                    name: "read".into(),
                    parent: Some(0),
                    start_ns: 10,
                    end_ns: 60,
                    attrs: vec![],
                },
                Span {
                    name: "wait".into(),
                    parent: Some(0),
                    start_ns: 100,
                    end_ns: 800,
                    attrs: vec![("cause".into(), "deadline".into())],
                },
                Span {
                    name: "mesh".into(),
                    parent: Some(2),
                    start_ns: 400,
                    end_ns: 700,
                    attrs: vec![],
                },
            ],
        }
    }

    #[test]
    fn builder_produces_a_well_formed_tree() {
        let mut tb = TraceBuilder::new(7, "encode");
        let read = tb.begin(SpanId::ROOT, "read");
        tb.end(read);
        let wait = tb.begin(SpanId::ROOT, "wait");
        tb.attr(wait, "cause", "full");
        let mesh = tb.begin(wait, "mesh");
        tb.end(mesh);
        tb.end(wait);
        tb.attr(SpanId::ROOT, "tiles", 4);
        let t = tb.finish();
        assert_eq!(t.id, 7);
        assert_eq!(t.name(), "encode");
        assert_eq!(t.spans.len(), 4);
        assert_eq!(t.children(0), vec![1, 2]);
        assert_eq!(t.children(2), vec![3]);
        assert_eq!(t.span("wait").unwrap().attr("cause"), Some("full"));
        assert_eq!(t.spans[0].attr("tiles"), Some("4"));
        // Monotonic offsets: every span starts no earlier than its
        // parent and ends no later than the root's end.
        for s in &t.spans[1..] {
            let p = &t.spans[s.parent.unwrap()];
            assert!(s.start_ns >= p.start_ns);
            assert!(s.end_ns <= t.spans[0].end_ns);
        }
    }

    #[test]
    fn retroactive_spans_and_anchor_offsets() {
        let anchor = Instant::now();
        let mut tb = TraceBuilder::with_anchor(1, "decode", anchor);
        let s = tb.record(SpanId::ROOT, "entropy", 120, 340);
        tb.attr(s, "coder", "rice");
        let t = tb.finish();
        assert_eq!(t.spans[1].start_ns, 120);
        assert_eq!(t.spans[1].end_ns, 340);
        assert_eq!(t.spans[1].duration_ns(), 220);
        assert_eq!(t.spans[1].attr("coder"), Some("rice"));
        // The root closed at finish(): at or after the retro span's
        // recorded offsets were plausible, and ≥ 0 in any case.
        assert!(t.duration_ns() > 0);
    }

    #[test]
    fn double_end_keeps_the_first_end_time() {
        let mut tb = TraceBuilder::new(1, "t");
        let s = tb.begin(SpanId::ROOT, "x");
        tb.end(s);
        let first = tb.spans[s.index()].end_ns;
        thread::sleep(Duration::from_millis(1));
        tb.end(s);
        assert_eq!(tb.spans[s.index()].end_ns, first);
    }

    #[test]
    fn json_render_is_byte_stable_and_pinned() {
        let t = fixture(0xff);
        let expected = concat!(
            "{\"traces\":[{\"id\":\"00000000000000ff\",\"name\":\"encode\",",
            "\"duration_ns\":900,\"spans\":[",
            "{\"name\":\"encode\",\"parent\":-1,\"start_ns\":0,\"end_ns\":900,",
            "\"attrs\":{\"tiles\":\"4\"}},",
            "{\"name\":\"read\",\"parent\":0,\"start_ns\":10,\"end_ns\":60,\"attrs\":{}},",
            "{\"name\":\"wait\",\"parent\":0,\"start_ns\":100,\"end_ns\":800,",
            "\"attrs\":{\"cause\":\"deadline\"}},",
            "{\"name\":\"mesh\",\"parent\":2,\"start_ns\":400,\"end_ns\":700,\"attrs\":{}}",
            "]}]}"
        );
        assert_eq!(traces_json(std::slice::from_ref(&t)), expected);
        assert_eq!(traces_json(std::slice::from_ref(&t)), traces_json(&[t]));
        assert_eq!(traces_json(&[]), "{\"traces\":[]}");
    }

    #[test]
    fn json_round_trips_through_the_subset_parser() {
        let traces = vec![fixture(0xff), fixture(0xdeadbeef)];
        let parsed = parse_traces(&traces_json(&traces)).unwrap();
        assert_eq!(parsed, traces);
        // Escaped content survives the round trip too.
        let mut odd = fixture(1);
        odd.spans[0]
            .attrs
            .push(("note".into(), "a\"b\\c\nd".into()));
        let parsed = parse_traces(&traces_json(&[odd.clone()])).unwrap();
        assert_eq!(parsed, vec![odd]);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_traces("").is_err());
        assert!(parse_traces("{\"traces\":[}").is_err());
        assert!(parse_traces("{\"spans\":[]}").is_err());
        let good = traces_json(&[fixture(2)]);
        assert!(parse_traces(&good[..good.len() - 1]).is_err());
        assert!(parse_traces(&format!("{good} x")).is_err());
    }

    #[test]
    fn tree_render_is_pinned() {
        let expected = "trace 00000000000000ff encode 900ns\n\
                        \x20 read +10ns 50ns\n\
                        \x20 wait +100ns 700ns cause=deadline\n\
                        \x20   mesh +400ns 300ns\n";
        assert_eq!(render_tree(&fixture(0xff)), expected);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_340_000), "2.34ms");
        assert_eq!(fmt_ns(1_230_000_000), "1.23s");
    }

    #[test]
    fn tracer_ring_evicts_oldest_recent() {
        let tracer = Tracer::new(3, 2);
        for id in 0..5u64 {
            tracer.record(fixture(id));
        }
        let ids: Vec<u64> = tracer.recent().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert!(tracer.slow().is_empty(), "slow capture starts disabled");
        assert_eq!(tracer.find(3).unwrap().id, 3);
        assert!(tracer.find(0).is_none(), "evicted traces are gone");
    }

    #[test]
    fn slow_buffer_keeps_slow_traces_across_fast_bursts() {
        let tracer = Tracer::new(2, 4);
        tracer.set_slow_threshold(Some(Duration::from_nanos(1_000)));
        let mut slow = fixture(0xabc);
        slow.spans[0].end_ns = 5_000; // 5µs root: over threshold
        tracer.record(slow);
        // A burst of fast traces (900ns roots, under threshold)
        // evicts it from the recent ring...
        for id in 1..=4u64 {
            tracer.record(fixture(id));
        }
        let recent: Vec<u64> = tracer.recent().iter().map(|t| t.id).collect();
        assert_eq!(recent, vec![3, 4]);
        // ...but the slow buffer still has it.
        let slow_ids: Vec<u64> = tracer.slow().iter().map(|t| t.id).collect();
        assert_eq!(slow_ids, vec![0xabc]);
        assert_eq!(tracer.find(0xabc).unwrap().id, 0xabc);
        // An exactly-at-threshold trace counts as slow.
        let mut edge = fixture(0xedbe);
        edge.spans[0].end_ns = 1_000;
        tracer.record(edge);
        assert_eq!(tracer.slow().len(), 2);
        // Disabling the threshold stops new slow captures.
        tracer.set_slow_threshold(None);
        let mut late = fixture(9);
        late.spans[0].end_ns = 9_000;
        tracer.record(late);
        assert_eq!(tracer.slow().len(), 2);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let tracer = Arc::new(Tracer::new(64, 8));
        tracer.set_slow_threshold(Some(Duration::from_nanos(1)));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let tracer = Arc::clone(&tracer);
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tracer.record(fixture(t * 1_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tracer.recent().len(), 64);
        assert_eq!(tracer.slow().len(), 8);
    }
}
