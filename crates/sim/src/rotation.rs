//! Mode rotations `U(k,k+1)` — the paper's quantum gate.
//!
//! The paper's network is built from lossless beam splitters acting between
//! *adjacent vector-space dimensions* `k` and `k+1` (Sec. III-A, Fig. 2):
//!
//! ```text
//! U(k,k+1) = | e^{iα} cos θ   −sin θ |
//!            | e^{iα} sin θ    cos θ |
//! ```
//!
//! with reflectivity `cos θ`, `θ ∈ [0, π/2]` nominal (training leaves θ
//! unconstrained in ℝ; the paper observes trained values stabilise in
//! `[0, 2π]`), and phase `α ∈ [0, 2π]`. The paper fixes `α ≡ 0`, making
//! every gate a real Givens rotation; the complex form is kept for the
//! "fully complex network" extension the paper's discussion proposes.
//!
//! Unlike qubit gates, a mode rotation touches exactly two amplitudes of
//! the N-dimensional vector, so it works on vectors of *any* length, not
//! just powers of two — matching the optical-circuit picture where each
//! dimension is a waveguide mode.

use crate::complex::Complex64;
use crate::error::SimError;
use crate::Result;

/// Apply the real mode rotation (α = 0) with angle `theta` between
/// components `k` and `k+1` of `amps`, in place.
///
/// ```text
/// | cos θ  −sin θ | | a_k   |
/// | sin θ   cos θ | | a_k+1 |
/// ```
///
/// # Errors
/// Returns [`SimError::InvalidArgument`] when `k + 1 ≥ amps.len()`.
#[inline]
pub fn apply_real(amps: &mut [f64], k: usize, theta: f64) -> Result<()> {
    if k + 1 >= amps.len() {
        return Err(SimError::InvalidArgument(format!(
            "mode rotation at k={k} out of range for dimension {}",
            amps.len()
        )));
    }
    let (s, c) = theta.sin_cos();
    let a = amps[k];
    let b = amps[k + 1];
    amps[k] = c * a - s * b;
    amps[k + 1] = s * a + c * b;
    Ok(())
}

/// Inverse of [`apply_real`] (rotation by −θ).
///
/// # Errors
/// Returns [`SimError::InvalidArgument`] when `k + 1 ≥ amps.len()`.
#[inline]
pub fn apply_real_inverse(amps: &mut [f64], k: usize, theta: f64) -> Result<()> {
    apply_real(amps, k, -theta)
}

/// Derivative of the rotated pair with respect to θ. Because
/// `dU/dθ = U(θ + π/2)` on the 2×2 block, the analytic gradient of a mesh
/// is computed by substituting this for the gate — see
/// `qn-core::gradient`.
#[inline]
pub fn apply_real_derivative(amps: &mut [f64], k: usize, theta: f64) -> Result<()> {
    apply_real(amps, k, theta + std::f64::consts::FRAC_PI_2)
}

/// Apply the complex beam-splitter `U(k,k+1)` with reflectivity angle
/// `theta` and phase `alpha`, in place (Fig. 2 of the paper; the Clements
/// convention with the phase on the first input mode).
///
/// # Errors
/// Returns [`SimError::InvalidArgument`] when `k + 1 ≥ amps.len()`.
#[inline]
pub fn apply_complex(amps: &mut [Complex64], k: usize, theta: f64, alpha: f64) -> Result<()> {
    if k + 1 >= amps.len() {
        return Err(SimError::InvalidArgument(format!(
            "mode rotation at k={k} out of range for dimension {}",
            amps.len()
        )));
    }
    let (s, c) = theta.sin_cos();
    let phase = Complex64::from_polar(1.0, alpha);
    let a = amps[k];
    let b = amps[k + 1];
    amps[k] = phase * a.scale(c) - b.scale(s);
    amps[k + 1] = phase * a.scale(s) + b.scale(c);
    Ok(())
}

/// Apply the inverse (conjugate transpose) of the complex beam splitter.
///
/// # Errors
/// Returns [`SimError::InvalidArgument`] when `k + 1 ≥ amps.len()`.
#[inline]
pub fn apply_complex_inverse(
    amps: &mut [Complex64],
    k: usize,
    theta: f64,
    alpha: f64,
) -> Result<()> {
    if k + 1 >= amps.len() {
        return Err(SimError::InvalidArgument(format!(
            "mode rotation at k={k} out of range for dimension {}",
            amps.len()
        )));
    }
    // U† = [[e^{-iα} cosθ, e^{-iα} sinθ], [−sinθ, cosθ]]
    let (s, c) = theta.sin_cos();
    let phase = Complex64::from_polar(1.0, -alpha);
    let a = amps[k];
    let b = amps[k + 1];
    amps[k] = phase * (a.scale(c) + b.scale(s));
    amps[k + 1] = b.scale(c) - a.scale(s);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::ZERO;

    const TOL: f64 = 1e-14;

    fn norm_sq(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn real_rotation_preserves_norm_and_other_components() {
        let mut v = vec![0.5, -0.3, 0.7, 0.1];
        let n0 = norm_sq(&v);
        apply_real(&mut v, 1, 0.8).unwrap();
        assert!((norm_sq(&v) - n0).abs() < TOL);
        assert_eq!(v[0], 0.5);
        assert_eq!(v[3], 0.1);
    }

    #[test]
    fn real_rotation_quarter_turn() {
        let mut v = vec![1.0, 0.0];
        apply_real(&mut v, 0, std::f64::consts::FRAC_PI_2).unwrap();
        assert!(v[0].abs() < TOL);
        assert!((v[1] - 1.0).abs() < TOL);
    }

    #[test]
    fn inverse_undoes_rotation() {
        let mut v = vec![0.2, 0.9, -0.4];
        let orig = v.clone();
        apply_real(&mut v, 0, 1.234).unwrap();
        apply_real_inverse(&mut v, 0, 1.234).unwrap();
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    fn derivative_is_finite_difference_limit() {
        let theta = 0.6;
        let h = 1e-7;
        let base = [0.3, -0.8];
        let mut plus = base;
        apply_real(&mut plus, 0, theta + h).unwrap();
        let mut minus = base;
        apply_real(&mut minus, 0, theta - h).unwrap();
        let mut deriv = base;
        apply_real_derivative(&mut deriv, 0, theta).unwrap();
        for i in 0..2 {
            let fd = (plus[i] - minus[i]) / (2.0 * h);
            assert!((fd - deriv[i]).abs() < 1e-7, "component {i}");
        }
    }

    #[test]
    fn bounds_are_checked() {
        let mut v = vec![1.0, 0.0];
        assert!(apply_real(&mut v, 1, 0.1).is_err());
        let mut c = vec![ZERO; 2];
        assert!(apply_complex(&mut c, 1, 0.1, 0.0).is_err());
        assert!(apply_complex_inverse(&mut c, 5, 0.1, 0.0).is_err());
    }

    #[test]
    fn complex_rotation_with_zero_phase_matches_real() {
        let mut cv: Vec<Complex64> = [0.6, -0.2, 0.5]
            .iter()
            .map(|&r| Complex64::from_real(r))
            .collect();
        let mut rv = vec![0.6, -0.2, 0.5];
        apply_complex(&mut cv, 1, 0.9, 0.0).unwrap();
        apply_real(&mut rv, 1, 0.9).unwrap();
        for (c, r) in cv.iter().zip(&rv) {
            assert!((c.re - r).abs() < TOL);
            assert!(c.im.abs() < TOL);
        }
    }

    #[test]
    fn complex_rotation_preserves_norm_with_any_phase() {
        let mut cv: Vec<Complex64> = vec![
            Complex64::new(0.3, 0.4),
            Complex64::new(-0.5, 0.1),
            Complex64::new(0.2, -0.6),
        ];
        let n0: f64 = cv.iter().map(|a| a.norm_sq()).sum();
        apply_complex(&mut cv, 0, 1.1, 2.3).unwrap();
        let n1: f64 = cv.iter().map(|a| a.norm_sq()).sum();
        assert!((n0 - n1).abs() < TOL);
    }

    #[test]
    fn complex_inverse_undoes_rotation() {
        let mut cv: Vec<Complex64> = vec![Complex64::new(0.3, 0.4), Complex64::new(-0.5, 0.1)];
        let orig = cv.clone();
        apply_complex(&mut cv, 0, 0.7, 1.9).unwrap();
        apply_complex_inverse(&mut cv, 0, 0.7, 1.9).unwrap();
        for (a, b) in cv.iter().zip(&orig) {
            assert!(a.approx_eq(*b, 1e-13));
        }
    }

    #[test]
    fn rotation_works_on_non_power_of_two_dimensions() {
        // Optical modes need not come in powers of two.
        let mut v = vec![1.0, 0.0, 0.0, 0.0, 0.0]; // 5 modes
        apply_real(&mut v, 0, 0.5).unwrap();
        apply_real(&mut v, 1, 0.5).unwrap();
        apply_real(&mut v, 2, 0.5).unwrap();
        apply_real(&mut v, 3, 0.5).unwrap();
        assert!((norm_sq(&v) - 1.0).abs() < TOL);
        assert!(v[4].abs() > 0.0); // amplitude has cascaded to the last mode
    }
}
