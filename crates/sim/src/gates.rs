//! Qubit gates applied by bit-twiddling over the amplitude array.
//!
//! A single-qubit gate on qubit `q` mixes amplitude pairs whose indices
//! differ only in bit `q`. The loop enumerates each pair once; for large
//! registers the pairs are processed in parallel with rayon (each pair is
//! touched by exactly one worker, so the parallel path is deterministic).

use crate::complex::{Complex64, ONE, ZERO};
use crate::error::SimError;
use crate::state::StateVector;
use crate::Result;
use rayon::prelude::*;

/// A 2×2 complex gate matrix, row-major: `[[m00, m01], [m10, m11]]`.
pub type Gate2 = [[Complex64; 2]; 2];

/// Registers with at least this many qubits use the rayon-parallel path.
const PAR_QUBIT_THRESHOLD: usize = 14;

/// Hadamard gate.
pub fn hadamard() -> Gate2 {
    let h = Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
    [[h, h], [h, -h]]
}

/// Pauli-X (NOT).
pub fn pauli_x() -> Gate2 {
    [[ZERO, ONE], [ONE, ZERO]]
}

/// Pauli-Y.
pub fn pauli_y() -> Gate2 {
    let i = crate::complex::I;
    [[ZERO, -i], [i, ZERO]]
}

/// Pauli-Z.
pub fn pauli_z() -> Gate2 {
    [[ONE, ZERO], [ZERO, -ONE]]
}

/// Phase gate `S = diag(1, i)`.
pub fn s_gate() -> Gate2 {
    [[ONE, ZERO], [ZERO, crate::complex::I]]
}

/// `T = diag(1, e^{iπ/4})`.
pub fn t_gate() -> Gate2 {
    [
        [ONE, ZERO],
        [
            ZERO,
            Complex64::from_polar(1.0, std::f64::consts::FRAC_PI_4),
        ],
    ]
}

/// Rotation about X: `RX(θ) = e^{-iθX/2}`.
pub fn rx(theta: f64) -> Gate2 {
    let (s, c) = (theta / 2.0).sin_cos();
    let mis = Complex64::new(0.0, -s);
    [
        [Complex64::from_real(c), mis],
        [mis, Complex64::from_real(c)],
    ]
}

/// Rotation about Y: `RY(θ) = e^{-iθY/2}` (real-valued).
pub fn ry(theta: f64) -> Gate2 {
    let (s, c) = (theta / 2.0).sin_cos();
    [
        [Complex64::from_real(c), Complex64::from_real(-s)],
        [Complex64::from_real(s), Complex64::from_real(c)],
    ]
}

/// Rotation about Z: `RZ(θ) = e^{-iθZ/2}`.
pub fn rz(theta: f64) -> Gate2 {
    [
        [Complex64::from_polar(1.0, -theta / 2.0), ZERO],
        [ZERO, Complex64::from_polar(1.0, theta / 2.0)],
    ]
}

/// Phase shift `diag(1, e^{iφ})`.
pub fn phase(phi: f64) -> Gate2 {
    [[ONE, ZERO], [ZERO, Complex64::from_polar(1.0, phi)]]
}

#[inline]
fn check_qubit(state: &StateVector, qubit: usize) -> Result<()> {
    if qubit >= state.n_qubits() {
        return Err(SimError::QubitOutOfRange {
            qubit,
            n_qubits: state.n_qubits(),
        });
    }
    Ok(())
}

/// Apply a single-qubit gate to `qubit` (qubit 0 is the least-significant
/// bit of the basis index).
///
/// # Errors
/// Returns [`SimError::QubitOutOfRange`] for a bad qubit index.
pub fn apply_single(state: &mut StateVector, qubit: usize, g: &Gate2) -> Result<()> {
    check_qubit(state, qubit)?;
    let n = state.n_qubits();
    let dim = state.dim();
    let stride = 1usize << qubit;
    let g = *g;
    let amps = state.amplitudes_mut();

    // Enumerate indices with bit `qubit` = 0; the partner has the bit set.
    let pair_body = |amps: &mut [Complex64], i0: usize| {
        let i1 = i0 | stride;
        let a0 = amps[i0];
        let a1 = amps[i1];
        amps[i0] = g[0][0] * a0 + g[0][1] * a1;
        amps[i1] = g[1][0] * a0 + g[1][1] * a1;
    };

    if n >= PAR_QUBIT_THRESHOLD {
        // Split into independent blocks of 2*stride amplitudes: each block
        // contains `stride` pairs and no pair crosses a block boundary.
        amps.par_chunks_mut(2 * stride).for_each(|chunk| {
            for off in 0..stride {
                let a0 = chunk[off];
                let a1 = chunk[off + stride];
                chunk[off] = g[0][0] * a0 + g[0][1] * a1;
                chunk[off + stride] = g[1][0] * a0 + g[1][1] * a1;
            }
        });
    } else {
        let mut base = 0usize;
        while base < dim {
            for off in 0..stride {
                pair_body(amps, base + off);
            }
            base += 2 * stride;
        }
    }
    Ok(())
}

/// Apply a controlled single-qubit gate: `g` acts on `target` when
/// `control` is `|1⟩`.
///
/// # Errors
/// Returns [`SimError::QubitOutOfRange`] or [`SimError::InvalidArgument`]
/// when control and target coincide.
pub fn apply_controlled(
    state: &mut StateVector,
    control: usize,
    target: usize,
    g: &Gate2,
) -> Result<()> {
    check_qubit(state, control)?;
    check_qubit(state, target)?;
    if control == target {
        return Err(SimError::InvalidArgument(
            "control and target must differ".to_string(),
        ));
    }
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    let dim = state.dim();
    let g = *g;
    let amps = state.amplitudes_mut();
    for i in 0..dim {
        // Visit each affected pair once: control set, target clear.
        if i & cbit != 0 && i & tbit == 0 {
            let j = i | tbit;
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = g[0][0] * a0 + g[0][1] * a1;
            amps[j] = g[1][0] * a0 + g[1][1] * a1;
        }
    }
    Ok(())
}

/// CNOT gate.
///
/// # Errors
/// Same conditions as [`apply_controlled`].
pub fn apply_cnot(state: &mut StateVector, control: usize, target: usize) -> Result<()> {
    apply_controlled(state, control, target, &pauli_x())
}

/// Controlled-Z gate (symmetric in its arguments).
///
/// # Errors
/// Same conditions as [`apply_controlled`].
pub fn apply_cz(state: &mut StateVector, a: usize, b: usize) -> Result<()> {
    apply_controlled(state, a, b, &pauli_z())
}

/// SWAP two qubits.
///
/// # Errors
/// Returns [`SimError::QubitOutOfRange`] or [`SimError::InvalidArgument`]
/// when the qubits coincide.
pub fn apply_swap(state: &mut StateVector, a: usize, b: usize) -> Result<()> {
    check_qubit(state, a)?;
    check_qubit(state, b)?;
    if a == b {
        return Err(SimError::InvalidArgument(
            "swap qubits must differ".to_string(),
        ));
    }
    let abit = 1usize << a;
    let bbit = 1usize << b;
    let dim = state.dim();
    let amps = state.amplitudes_mut();
    for i in 0..dim {
        // Swap |…1…0…⟩ with |…0…1…⟩; visit each pair once.
        if i & abit != 0 && i & bbit == 0 {
            let j = (i & !abit) | bbit;
            amps.swap(i, j);
        }
    }
    Ok(())
}

/// Compose `g ∘ f` as 2×2 matrices (apply `f` first).
pub fn compose(g: &Gate2, f: &Gate2) -> Gate2 {
    let mut out = [[ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = g[i][0] * f[0][j] + g[i][1] * f[1][j];
        }
    }
    out
}

/// True when `g` is unitary within `tol` (`g†g = I`).
pub fn is_unitary(g: &Gate2, tol: f64) -> bool {
    let mut gtg = [[ZERO; 2]; 2];
    for (i, row) in gtg.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = g[0][i].conj() * g[0][j] + g[1][i].conj() * g[1][j];
        }
    }
    let id = [[ONE, ZERO], [ZERO, ONE]];
    for i in 0..2 {
        for j in 0..2 {
            if !(gtg[i][j] - id[i][j]).approx_eq(ZERO, tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn norm_preserved(state: &StateVector) {
        assert!((state.norm() - 1.0).abs() < TOL, "norm {}", state.norm());
    }

    #[test]
    fn standard_gates_are_unitary() {
        for g in [
            hadamard(),
            pauli_x(),
            pauli_y(),
            pauli_z(),
            s_gate(),
            t_gate(),
            rx(0.7),
            ry(-1.3),
            rz(2.1),
            phase(0.4),
        ] {
            assert!(is_unitary(&g, TOL));
        }
    }

    #[test]
    fn x_flips_basis_state() {
        let mut s = StateVector::zero_state(1);
        apply_single(&mut s, 0, &pauli_x()).unwrap();
        assert!((s.probability(1).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero_state(3);
        for q in 0..3 {
            apply_single(&mut s, q, &hadamard()).unwrap();
        }
        for p in s.probabilities() {
            assert!((p - 0.125).abs() < TOL);
        }
        norm_preserved(&s);
    }

    #[test]
    fn hadamard_twice_is_identity() {
        let mut s = StateVector::from_real(&[0.6, 0.8]).unwrap();
        let orig = s.clone();
        apply_single(&mut s, 0, &hadamard()).unwrap();
        apply_single(&mut s, 0, &hadamard()).unwrap();
        for (a, b) in s.amplitudes().iter().zip(orig.amplitudes()) {
            assert!(a.approx_eq(*b, TOL));
        }
    }

    #[test]
    fn gate_on_correct_qubit_of_multiqubit_register() {
        // X on qubit 1 of |00⟩ → |10⟩ = index 2.
        let mut s = StateVector::zero_state(2);
        apply_single(&mut s, 1, &pauli_x()).unwrap();
        assert!((s.probability(2).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn qubit_bounds_checked() {
        let mut s = StateVector::zero_state(2);
        assert!(apply_single(&mut s, 2, &pauli_x()).is_err());
        assert!(apply_cnot(&mut s, 0, 2).is_err());
        assert!(apply_controlled(&mut s, 1, 1, &pauli_x()).is_err());
        assert!(apply_swap(&mut s, 0, 0).is_err());
    }

    #[test]
    fn cnot_entangles_into_bell_state() {
        let mut s = StateVector::zero_state(2);
        apply_single(&mut s, 0, &hadamard()).unwrap();
        apply_cnot(&mut s, 0, 1).unwrap();
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < TOL); // |00⟩
        assert!((p[3] - 0.5).abs() < TOL); // |11⟩
        assert!(p[1].abs() < TOL && p[2].abs() < TOL);
    }

    #[test]
    fn cnot_control_zero_is_identity() {
        let mut s = StateVector::zero_state(2); // control (qubit 0) = 0
        apply_cnot(&mut s, 0, 1).unwrap();
        assert!((s.probability(0).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn cz_is_symmetric() {
        let mut a = StateVector::uniform(2);
        let mut b = StateVector::uniform(2);
        apply_cz(&mut a, 0, 1).unwrap();
        apply_cz(&mut b, 1, 0).unwrap();
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, TOL));
        }
        // Phase flip applied exactly on |11⟩.
        assert!(a.amplitudes()[3].re < 0.0);
    }

    #[test]
    fn swap_exchanges_qubits() {
        // |01⟩ (index 1: qubit0=1) → |10⟩ (index 2).
        let mut s = StateVector::basis_state(2, 1).unwrap();
        apply_swap(&mut s, 0, 1).unwrap();
        assert!((s.probability(2).unwrap() - 1.0).abs() < TOL);
        // Swap twice = identity.
        apply_swap(&mut s, 0, 1).unwrap();
        assert!((s.probability(1).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn ry_rotates_real_amplitudes() {
        let mut s = StateVector::zero_state(1);
        apply_single(&mut s, 0, &ry(std::f64::consts::FRAC_PI_2)).unwrap();
        // RY(π/2)|0⟩ = (|0⟩ + |1⟩)/√2
        assert!((s.amplitudes()[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
        assert!((s.amplitudes()[1].re - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
    }

    #[test]
    fn rz_adds_relative_phase_only() {
        let mut s = StateVector::uniform(1);
        apply_single(&mut s, 0, &rz(1.0)).unwrap();
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[1] - 0.5).abs() < TOL);
        // Relative phase is e^{iθ}.
        let rel = s.amplitudes()[1] / s.amplitudes()[0];
        assert!((rel.arg() - 1.0).abs() < TOL);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let f = ry(0.3);
        let g = rx(0.9);
        let gf = compose(&g, &f);
        let mut s1 = StateVector::from_real(&[0.6, 0.8]).unwrap();
        let mut s2 = s1.clone();
        apply_single(&mut s1, 0, &f).unwrap();
        apply_single(&mut s1, 0, &g).unwrap();
        apply_single(&mut s2, 0, &gf).unwrap();
        for (a, b) in s1.amplitudes().iter().zip(s2.amplitudes()) {
            assert!(a.approx_eq(*b, TOL));
        }
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // 15 qubits crosses PAR_QUBIT_THRESHOLD; compare against a 13-qubit
        // register extended by the same operations? Instead: apply to the
        // same state with a gate on a high and a low qubit and verify norm
        // and a few amplitudes against the dense definition.
        let n = PAR_QUBIT_THRESHOLD + 1;
        let mut s = StateVector::zero_state(n);
        apply_single(&mut s, 0, &hadamard()).unwrap();
        apply_single(&mut s, n - 1, &hadamard()).unwrap();
        norm_preserved(&s);
        let amp = 0.5;
        for idx in [0usize, 1, 1 << (n - 1), (1 << (n - 1)) | 1] {
            assert!((s.amplitudes()[idx].re - amp).abs() < TOL);
        }
    }
}
