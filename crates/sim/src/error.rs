//! Error type for the simulator crate.

use std::fmt;

/// Errors produced by state-vector operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Dimension is not a power of two where a qubit register was required.
    NotPowerOfTwo(usize),
    /// Operand dimensions are incompatible.
    DimensionMismatch {
        /// The dimension the operation required.
        expected: usize,
        /// The dimension it was given.
        got: usize,
    },
    /// A qubit index exceeds the register size.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The register size.
        n_qubits: usize,
    },
    /// The state has (numerically) zero norm where a normalised state was
    /// required.
    ZeroNorm,
    /// An argument was outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotPowerOfTwo(d) => {
                write!(f, "dimension {d} is not a power of two")
            }
            SimError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            SimError::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {n_qubits}-qubit register"
                )
            }
            SimError::ZeroNorm => write!(f, "state has zero norm"),
            SimError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::NotPowerOfTwo(6).to_string().contains('6'));
        assert!(SimError::DimensionMismatch {
            expected: 4,
            got: 5
        }
        .to_string()
        .contains("expected 4"));
        assert!(SimError::QubitOutOfRange {
            qubit: 7,
            n_qubits: 3
        }
        .to_string()
        .contains("qubit 7"));
        assert_eq!(SimError::ZeroNorm.to_string(), "state has zero norm");
    }
}
