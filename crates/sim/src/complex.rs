//! Self-contained double-precision complex numbers.
//!
//! The allowed dependency set does not include `num-complex`, so the
//! simulator carries its own minimal-but-complete implementation. The type
//! is `Copy`, 16 bytes, and all arithmetic is `#[inline]` — amplitudes are
//! streamed through these operations in the innermost simulator loops.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The complex zero.
pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
/// The complex one.
pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
/// The imaginary unit.
pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

impl Complex64 {
    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Purely real number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// From polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 {
            re: r * c,
            im: r * s,
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²` (cheaper than [`Complex64::abs`]; this is the
    /// measurement probability of an amplitude).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaNs for zero input, matching IEEE division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sq();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// True when `|self − other| ≤ tol` component-wise.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z · w⁻¹ by definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-15;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + ZERO, z);
        assert_eq!(z * ONE, z);
        assert_eq!(z - z, ZERO);
        assert_eq!(-z, Complex64::new(-3.0, 4.0));
        assert_eq!(z * 2.0, Complex64::new(6.0, -8.0));
    }

    #[test]
    fn multiplication_matches_hand_calculation() {
        // (1+2i)(3+4i) = 3+4i+6i+8i² = -5+10i
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        assert_eq!(a * b, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(I * I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn division_and_recip() {
        let z = Complex64::new(1.0, 2.0);
        let w = z / z;
        assert!(w.approx_eq(ONE, TOL));
        assert!((z * z.recip()).approx_eq(ONE, TOL));
    }

    #[test]
    fn modulus_and_phase() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert!((Complex64::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < TOL);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn euler_identity() {
        // e^{iπ} = −1
        let z = (I * std::f64::consts::PI).exp();
        assert!(z.approx_eq(Complex64::new(-1.0, 0.0), 1e-15));
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut z = Complex64::new(1.0, 1.0);
        z += ONE;
        assert_eq!(z, Complex64::new(2.0, 1.0));
        z -= I;
        assert_eq!(z, Complex64::new(2.0, 0.0));
        z *= I;
        assert_eq!(z, Complex64::new(0.0, 2.0));
        let total: Complex64 = [ONE, I, ONE].into_iter().sum();
        assert_eq!(total, Complex64::new(2.0, 1.0));
    }

    #[test]
    fn display_formats_sign_correctly() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn conversions_and_finiteness() {
        let z: Complex64 = 2.5.into();
        assert_eq!(z, Complex64::from_real(2.5));
        assert!(z.is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }
}
