//! N-qubit state vectors.

use crate::complex::{Complex64, ZERO};
use crate::error::SimError;
use crate::Result;
use rand::Rng;

/// A pure quantum state over `n` qubits, stored as 2ⁿ complex amplitudes
/// in computational-basis order (`|j⟩` at index `j`).
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros basis state `|0…0⟩`.
    pub fn zero_state(n_qubits: usize) -> Self {
        let mut amps = vec![ZERO; 1 << n_qubits];
        amps[0] = Complex64::from_real(1.0);
        StateVector { n_qubits, amps }
    }

    /// Computational-basis state `|j⟩`.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidArgument`] when `j ≥ 2ⁿ`.
    pub fn basis_state(n_qubits: usize, j: usize) -> Result<Self> {
        let dim = 1usize << n_qubits;
        if j >= dim {
            return Err(SimError::InvalidArgument(format!(
                "basis state {j} out of range for dimension {dim}"
            )));
        }
        let mut amps = vec![ZERO; dim];
        amps[j] = Complex64::from_real(1.0);
        Ok(StateVector { n_qubits, amps })
    }

    /// Uniform superposition `H^{⊗n}|0⟩`.
    pub fn uniform(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        let a = Complex64::from_real(1.0 / (dim as f64).sqrt());
        StateVector {
            n_qubits,
            amps: vec![a; dim],
        }
    }

    /// Build from explicit complex amplitudes. The length must be a power
    /// of two; the state is *not* normalised automatically.
    ///
    /// # Errors
    /// Returns [`SimError::NotPowerOfTwo`] for invalid lengths.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Result<Self> {
        let dim = amps.len();
        if dim == 0 || !dim.is_power_of_two() {
            return Err(SimError::NotPowerOfTwo(dim));
        }
        Ok(StateVector {
            n_qubits: dim.trailing_zeros() as usize,
            amps,
        })
    }

    /// Build from real amplitudes (the paper's networks are real-valued).
    ///
    /// # Errors
    /// Returns [`SimError::NotPowerOfTwo`] for invalid lengths.
    pub fn from_real(amps: &[f64]) -> Result<Self> {
        Self::from_amplitudes(amps.iter().map(|&r| Complex64::from_real(r)).collect())
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension 2ⁿ.
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Borrow the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutably borrow the amplitudes (gates use this).
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Real parts of all amplitudes.
    pub fn real_parts(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.re).collect()
    }

    /// Euclidean norm of the amplitude vector.
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sq()).sum::<f64>().sqrt()
    }

    /// Normalise in place.
    ///
    /// # Errors
    /// Returns [`SimError::ZeroNorm`] for the zero vector.
    pub fn normalize(&mut self) -> Result<()> {
        let n = self.norm();
        if n <= 0.0 {
            return Err(SimError::ZeroNorm);
        }
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
        Ok(())
    }

    /// Inner product `⟨self|other⟩` (conjugate-linear in `self`).
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] when dimensions differ.
    pub fn inner_product(&self, other: &StateVector) -> Result<Complex64> {
        if self.dim() != other.dim() {
            return Err(SimError::DimensionMismatch {
                expected: self.dim(),
                got: other.dim(),
            });
        }
        Ok(self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// State fidelity `|⟨self|other⟩|²` (for normalised states).
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] when dimensions differ.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64> {
        Ok(self.inner_product(other)?.norm_sq())
    }

    /// Measurement probabilities `|aⱼ|²` for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sq()).collect()
    }

    /// Probability of basis state `j`.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidArgument`] when `j` is out of range.
    pub fn probability(&self, j: usize) -> Result<f64> {
        self.amps
            .get(j)
            .map(|a| a.norm_sq())
            .ok_or_else(|| SimError::InvalidArgument(format!("basis index {j} out of range")))
    }

    /// Sample one projective measurement in the computational basis,
    /// returning the observed basis index. The state is not collapsed; the
    /// caller owns post-measurement semantics.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let r: f64 = rng.random::<f64>() * self.norm().powi(2);
        let mut acc = 0.0;
        for (j, a) in self.amps.iter().enumerate() {
            acc += a.norm_sq();
            if r < acc {
                return j;
            }
        }
        self.amps.len() - 1
    }

    /// Histogram of `shots` independent measurements.
    pub fn sample_counts(&self, shots: usize, rng: &mut impl Rng) -> Vec<u64> {
        let mut counts = vec![0u64; self.dim()];
        for _ in 0..shots {
            counts[self.sample(rng)] += 1;
        }
        counts
    }

    /// Expectation of a diagonal observable with eigenvalues `diag`.
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] when lengths differ.
    pub fn expectation_diagonal(&self, diag: &[f64]) -> Result<f64> {
        if diag.len() != self.dim() {
            return Err(SimError::DimensionMismatch {
                expected: self.dim(),
                got: diag.len(),
            });
        }
        Ok(self
            .amps
            .iter()
            .zip(diag)
            .map(|(a, &d)| a.norm_sq() * d)
            .sum())
    }

    /// Tensor product `self ⊗ other` (self's qubits become the high bits).
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let mut amps = Vec::with_capacity(self.dim() * other.dim());
        for a in &self.amps {
            for b in &other.amps {
                amps.push(*a * *b);
            }
        }
        StateVector {
            n_qubits: self.n_qubits + other.n_qubits,
            amps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    #[test]
    fn zero_state_is_normalised_basis_zero() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.dim(), 8);
        assert_eq!(s.n_qubits(), 3);
        assert!((s.norm() - 1.0).abs() < TOL);
        assert!((s.probability(0).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn basis_state_bounds() {
        assert!(StateVector::basis_state(2, 3).is_ok());
        assert!(StateVector::basis_state(2, 4).is_err());
    }

    #[test]
    fn uniform_state_probabilities() {
        let s = StateVector::uniform(2);
        for p in s.probabilities() {
            assert!((p - 0.25).abs() < TOL);
        }
        assert!((s.norm() - 1.0).abs() < TOL);
    }

    #[test]
    fn from_amplitudes_validates_power_of_two() {
        assert!(StateVector::from_real(&[1.0, 0.0, 0.0]).is_err());
        assert!(StateVector::from_real(&[]).is_err());
        let s = StateVector::from_real(&[0.6, 0.8]).unwrap();
        assert_eq!(s.n_qubits(), 1);
        assert!((s.norm() - 1.0).abs() < TOL);
    }

    #[test]
    fn normalize_and_zero_norm_error() {
        let mut s = StateVector::from_real(&[3.0, 4.0]).unwrap();
        s.normalize().unwrap();
        assert!((s.amplitudes()[0].re - 0.6).abs() < TOL);
        let mut z = StateVector::from_real(&[0.0, 0.0]).unwrap();
        assert_eq!(z.normalize(), Err(SimError::ZeroNorm));
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::from_real(&[1.0, 0.0]).unwrap();
        let b = StateVector::from_real(&[0.0, 1.0]).unwrap();
        assert_eq!(a.inner_product(&b).unwrap(), ZERO);
        assert_eq!(a.fidelity(&a).unwrap(), 1.0);
        assert_eq!(a.fidelity(&b).unwrap(), 0.0);
        let c = StateVector::from_real(&[0.6, 0.8]).unwrap();
        assert!((a.fidelity(&c).unwrap() - 0.36).abs() < TOL);
        // Mismatched dims error.
        let d = StateVector::zero_state(2);
        assert!(a.fidelity(&d).is_err());
    }

    #[test]
    fn inner_product_conjugates_left_argument() {
        let a = StateVector::from_amplitudes(vec![crate::complex::I, ZERO]).unwrap();
        let b = StateVector::from_real(&[1.0, 0.0]).unwrap();
        // ⟨i·0| 0⟩ = conj(i) = −i
        assert_eq!(a.inner_product(&b).unwrap(), Complex64::new(0.0, -1.0));
    }

    #[test]
    fn sampling_is_deterministic_and_distributed() {
        let s = StateVector::from_real(&[0.6, 0.8]).unwrap(); // p = 0.36 / 0.64
        let mut rng = StdRng::seed_from_u64(5);
        let counts = s.sample_counts(10_000, &mut rng);
        let p1 = counts[1] as f64 / 10_000.0;
        assert!((p1 - 0.64).abs() < 0.02, "p1 = {p1}");
        // Determinism.
        let mut rng2 = StdRng::seed_from_u64(5);
        assert_eq!(counts, s.sample_counts(10_000, &mut rng2));
    }

    #[test]
    fn expectation_of_diagonal_observable() {
        let s = StateVector::from_real(&[0.6, 0.8]).unwrap();
        // ⟨Z⟩ with Z = diag(1, −1): 0.36 − 0.64 = −0.28
        let z = s.expectation_diagonal(&[1.0, -1.0]).unwrap();
        assert!((z + 0.28).abs() < TOL);
        assert!(s.expectation_diagonal(&[1.0]).is_err());
    }

    #[test]
    fn tensor_product_structure() {
        let a = StateVector::from_real(&[0.0, 1.0]).unwrap(); // |1⟩
        let b = StateVector::from_real(&[1.0, 0.0]).unwrap(); // |0⟩
        let t = a.tensor(&b); // |10⟩ = index 2
        assert_eq!(t.n_qubits(), 2);
        assert!((t.probability(2).unwrap() - 1.0).abs() < TOL);
        // Norm multiplies.
        let u = StateVector::uniform(1).tensor(&StateVector::uniform(2));
        assert!((u.norm() - 1.0).abs() < TOL);
        assert_eq!(u.dim(), 8);
    }

    #[test]
    fn real_parts_roundtrip() {
        let xs = [0.1, -0.2, 0.3, 0.4];
        let s = StateVector::from_real(&xs).unwrap();
        assert_eq!(s.real_parts(), xs.to_vec());
    }
}
