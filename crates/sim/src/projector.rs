//! Subspace projectors `P1` / `P0`.
//!
//! Compression in the paper is the projection `P1` onto a d-dimensional
//! subspace of the N-dimensional state space, with `P0 = I − P1` its
//! complement (Sec. II-B, Fig. 2). The paper's 8-dimensional example keeps
//! the *last* d basis states, so [`Projector::keep_last`] is the default
//! used by `qn-core`; arbitrary masks are supported for ablations.

use crate::complex::Complex64;
use crate::error::SimError;
use crate::Result;

/// A diagonal 0/1 projector onto a subset of computational basis states.
#[derive(Debug, Clone, PartialEq)]
pub struct Projector {
    mask: Vec<bool>,
}

impl Projector {
    /// Keep the first `d` of `n` dimensions.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidArgument`] when `d > n`.
    pub fn keep_first(n: usize, d: usize) -> Result<Self> {
        if d > n {
            return Err(SimError::InvalidArgument(format!(
                "cannot keep {d} of {n} dimensions"
            )));
        }
        Ok(Projector {
            mask: (0..n).map(|i| i < d).collect(),
        })
    }

    /// Keep the last `d` of `n` dimensions (the paper's convention:
    /// compression targets like `[0,0,0,0,.25,.25,.25,.25]` place the kept
    /// subspace at the top of the index range).
    ///
    /// # Errors
    /// Returns [`SimError::InvalidArgument`] when `d > n`.
    pub fn keep_last(n: usize, d: usize) -> Result<Self> {
        if d > n {
            return Err(SimError::InvalidArgument(format!(
                "cannot keep {d} of {n} dimensions"
            )));
        }
        Ok(Projector {
            mask: (0..n).map(|i| i >= n - d).collect(),
        })
    }

    /// Arbitrary keep-mask (`true` = kept).
    pub fn from_mask(mask: Vec<bool>) -> Self {
        Projector { mask }
    }

    /// Total dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.mask.len()
    }

    /// Number of kept dimensions `d`.
    pub fn keep_count(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Whether basis state `j` is kept.
    #[inline]
    pub fn keeps(&self, j: usize) -> bool {
        self.mask[j]
    }

    /// Indices of kept basis states, ascending.
    pub fn kept_indices(&self) -> Vec<usize> {
        self.mask
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// The complementary projector `P0 = I − P1`.
    pub fn complement(&self) -> Projector {
        Projector {
            mask: self.mask.iter().map(|&b| !b).collect(),
        }
    }

    /// Zero out discarded components of a real amplitude vector, in place.
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] on length mismatch.
    pub fn project_real(&self, amps: &mut [f64]) -> Result<()> {
        if amps.len() != self.mask.len() {
            return Err(SimError::DimensionMismatch {
                expected: self.mask.len(),
                got: amps.len(),
            });
        }
        for (a, &keep) in amps.iter_mut().zip(&self.mask) {
            if !keep {
                *a = 0.0;
            }
        }
        Ok(())
    }

    /// Zero out discarded components of a complex amplitude vector.
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] on length mismatch.
    pub fn project_complex(&self, amps: &mut [Complex64]) -> Result<()> {
        if amps.len() != self.mask.len() {
            return Err(SimError::DimensionMismatch {
                expected: self.mask.len(),
                got: amps.len(),
            });
        }
        for (a, &keep) in amps.iter_mut().zip(&self.mask) {
            if !keep {
                *a = Complex64::default();
            }
        }
        Ok(())
    }

    /// Probability mass *outside* the kept subspace — the quantity the
    /// trash-penalty compression loss drives to zero.
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] on length mismatch.
    pub fn leaked_probability(&self, amps: &[f64]) -> Result<f64> {
        if amps.len() != self.mask.len() {
            return Err(SimError::DimensionMismatch {
                expected: self.mask.len(),
                got: amps.len(),
            });
        }
        Ok(amps
            .iter()
            .zip(&self.mask)
            .filter(|(_, &keep)| !keep)
            .map(|(a, _)| a * a)
            .sum())
    }

    /// Probability mass inside the kept subspace.
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] on length mismatch.
    pub fn kept_probability(&self, amps: &[f64]) -> Result<f64> {
        Ok(amps.iter().map(|a| a * a).sum::<f64>() - self.leaked_probability(amps)?)
    }

    /// Project and renormalise (post-selection on the kept subspace).
    /// Returns the pre-projection kept probability.
    ///
    /// # Errors
    /// [`SimError::DimensionMismatch`] on length mismatch, or
    /// [`SimError::ZeroNorm`] when no amplitude survives.
    pub fn project_normalize_real(&self, amps: &mut [f64]) -> Result<f64> {
        let kept = self.kept_probability(amps)?;
        if kept <= 0.0 {
            return Err(SimError::ZeroNorm);
        }
        self.project_real(amps)?;
        let inv = 1.0 / kept.sqrt();
        for a in amps.iter_mut() {
            *a *= inv;
        }
        Ok(kept)
    }

    /// Dense matrix form (diagonal of 0/1) as flat row-major data, for
    /// interop with `qn-linalg`.
    pub fn to_diagonal(&self) -> Vec<f64> {
        self.mask
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_first_and_last_conventions() {
        let pf = Projector::keep_first(4, 2).unwrap();
        assert_eq!(pf.kept_indices(), vec![0, 1]);
        let pl = Projector::keep_last(4, 2).unwrap();
        assert_eq!(pl.kept_indices(), vec![2, 3]);
        assert_eq!(pf.keep_count(), 2);
        assert_eq!(pf.dim(), 4);
        assert!(Projector::keep_first(2, 3).is_err());
        assert!(Projector::keep_last(2, 3).is_err());
    }

    #[test]
    fn paper_example_kept_subspace() {
        // (bᵢ)² = [0,0,0,0,.25,.25,.25,.25]: 8 dims, last 4 kept.
        let p = Projector::keep_last(8, 4).unwrap();
        assert_eq!(p.kept_indices(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn complement_partitions_identity() {
        let p1 = Projector::keep_last(6, 2).unwrap();
        let p0 = p1.complement();
        assert_eq!(p0.keep_count(), 4);
        let d1 = p1.to_diagonal();
        let d0 = p0.to_diagonal();
        // P1 + P0 = I element-wise on the diagonal.
        for (a, b) in d1.iter().zip(&d0) {
            assert_eq!(a + b, 1.0);
        }
    }

    #[test]
    fn projection_zeroes_discarded_components() {
        let p = Projector::keep_last(4, 2).unwrap();
        let mut v = vec![0.5, 0.5, 0.5, 0.5];
        p.project_real(&mut v).unwrap();
        assert_eq!(v, vec![0.0, 0.0, 0.5, 0.5]);
        assert!(p.project_real(&mut [0.0; 3]).is_err());
    }

    #[test]
    fn projection_is_idempotent() {
        let p = Projector::from_mask(vec![true, false, true, false]);
        let mut v = vec![0.1, 0.2, 0.3, 0.4];
        p.project_real(&mut v).unwrap();
        let once = v.clone();
        p.project_real(&mut v).unwrap();
        assert_eq!(v, once);
    }

    #[test]
    fn leak_and_kept_probability() {
        let p = Projector::keep_last(4, 2).unwrap();
        let v = [0.5, 0.5, 0.5, 0.5];
        assert!((p.leaked_probability(&v).unwrap() - 0.5).abs() < 1e-15);
        assert!((p.kept_probability(&v).unwrap() - 0.5).abs() < 1e-15);
        assert!(p.leaked_probability(&[1.0]).is_err());
    }

    #[test]
    fn project_normalize_post_selects() {
        let p = Projector::keep_last(4, 2).unwrap();
        let mut v = vec![0.5, 0.5, 0.5, 0.5];
        let kept = p.project_normalize_real(&mut v).unwrap();
        assert!((kept - 0.5).abs() < 1e-15);
        let n: f64 = v.iter().map(|x| x * x).sum();
        assert!((n - 1.0).abs() < 1e-15);
        // All mass in the kept dims now.
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 0.0);
    }

    #[test]
    fn project_normalize_rejects_fully_leaked_state() {
        let p = Projector::keep_last(4, 2).unwrap();
        let mut v = vec![1.0, 0.0, 0.0, 0.0];
        assert_eq!(p.project_normalize_real(&mut v), Err(SimError::ZeroNorm));
    }

    #[test]
    fn complex_projection() {
        use crate::complex::Complex64;
        let p = Projector::keep_first(2, 1).unwrap();
        let mut v = vec![Complex64::new(0.3, 0.4), Complex64::new(0.5, -0.1)];
        p.project_complex(&mut v).unwrap();
        assert_eq!(v[1], Complex64::default());
        assert_eq!(v[0], Complex64::new(0.3, 0.4));
        assert!(p.project_complex(&mut [Complex64::default(); 3]).is_err());
    }
}
