//! Finite-shot estimation of measurement statistics.
//!
//! The paper trains on exact simulated amplitudes, but a hardware run would
//! estimate `|aⱼ|²` from a finite number of measurement shots. This module
//! provides the shot-noise model used by the noise-robustness ablation:
//! probabilities are estimated from multinomial counts, and amplitudes are
//! recovered as `sign · √p̂` where the sign is taken from the exact state
//! (sign recovery needs interference measurements that the paper's setup
//! does not model; keeping the true sign isolates *magnitude* noise, which
//! is the dominant effect for near-binary data).

use crate::state::StateVector;
use rand::Rng;

/// Estimate basis-state probabilities from `shots` measurements.
/// With `shots == 0` the exact probabilities are returned (infinite-shot
/// limit), so callers can sweep `shots` without special-casing.
pub fn estimate_probabilities(state: &StateVector, shots: usize, rng: &mut impl Rng) -> Vec<f64> {
    if shots == 0 {
        return state.probabilities();
    }
    let counts = state.sample_counts(shots, rng);
    counts.iter().map(|&c| c as f64 / shots as f64).collect()
}

/// Estimate real amplitudes under shot noise: `sign(a_j) · √p̂_j`.
/// With `shots == 0`, returns the exact real parts.
pub fn estimate_real_amplitudes(state: &StateVector, shots: usize, rng: &mut impl Rng) -> Vec<f64> {
    let probs = estimate_probabilities(state, shots, rng);
    state
        .amplitudes()
        .iter()
        .zip(&probs)
        .map(|(a, &p)| p.sqrt().copysign(if a.re == 0.0 { 1.0 } else { a.re }))
        .collect()
}

/// Standard error of a probability estimate `p` from `shots` samples
/// (binomial): `√(p(1−p)/shots)`.
pub fn probability_std_error(p: f64, shots: usize) -> f64 {
    if shots == 0 {
        return 0.0;
    }
    (p * (1.0 - p) / shots as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_shots_is_exact() {
        let s = StateVector::from_real(&[0.6, 0.8]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let p = estimate_probabilities(&s, 0, &mut rng);
        assert!((p[0] - 0.36).abs() < 1e-15);
        let a = estimate_real_amplitudes(&s, 0, &mut rng);
        assert!((a[0] - 0.6).abs() < 1e-15);
        assert!((a[1] - 0.8).abs() < 1e-15);
    }

    #[test]
    fn estimates_converge_with_shots() {
        let s = StateVector::from_real(&[0.6, 0.8]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let p_small = estimate_probabilities(&s, 100, &mut rng);
        let p_large = estimate_probabilities(&s, 100_000, &mut rng);
        let err_small = (p_small[1] - 0.64).abs();
        let err_large = (p_large[1] - 0.64).abs();
        assert!(err_large < 0.01);
        assert!(err_large <= err_small + 0.01);
        // Estimates are proper distributions.
        assert!((p_large.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_signs_are_preserved() {
        let s = StateVector::from_real(&[-0.6, 0.8]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let a = estimate_real_amplitudes(&s, 10_000, &mut rng);
        assert!(a[0] < 0.0);
        assert!(a[1] > 0.0);
    }

    #[test]
    fn std_error_shrinks_as_inverse_sqrt() {
        let e1 = probability_std_error(0.5, 100);
        let e2 = probability_std_error(0.5, 10_000);
        assert!((e1 / e2 - 10.0).abs() < 1e-12);
        assert_eq!(probability_std_error(0.5, 0), 0.0);
        assert_eq!(probability_std_error(0.0, 100), 0.0);
    }
}
