//! Gate-sequence circuits.
//!
//! A thin, explicit circuit representation: an ordered list of operations
//! that can be applied to a [`StateVector`]. It covers both the standard
//! qubit gate set and the paper's mode rotations, so a whole compression
//! network can be expressed — and unit-tested — as a single `Circuit`.

use crate::error::SimError;
use crate::gates;
use crate::rotation;
use crate::state::StateVector;
use crate::Result;

/// One circuit operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Hadamard on a qubit.
    H(usize),
    /// Pauli-X on a qubit.
    X(usize),
    /// Pauli-Y on a qubit.
    Y(usize),
    /// Pauli-Z on a qubit.
    Z(usize),
    /// Rotation about X by θ.
    Rx(usize, f64),
    /// Rotation about Y by θ.
    Ry(usize, f64),
    /// Rotation about Z by θ.
    Rz(usize, f64),
    /// Phase shift `diag(1, e^{iφ})`.
    Phase(usize, f64),
    /// CNOT with (control, target).
    Cnot(usize, usize),
    /// Controlled-Z.
    Cz(usize, usize),
    /// SWAP two qubits.
    Swap(usize, usize),
    /// The paper's mode rotation `U(k,k+1)` with angle θ and phase α,
    /// acting on adjacent amplitudes of the state vector.
    ModeRotation {
        /// First of the two coupled modes.
        k: usize,
        /// Reflectivity angle θ.
        theta: f64,
        /// Phase α (the paper fixes α ≡ 0).
        alpha: f64,
    },
}

/// An ordered sequence of operations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    ops: Vec<Op>,
}

impl Circuit {
    /// Empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Append an operation (builder style).
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Borrow the operation list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Apply every operation in order to `state`.
    ///
    /// # Errors
    /// Propagates gate errors (bad qubit/mode indices).
    pub fn apply(&self, state: &mut StateVector) -> Result<()> {
        for op in &self.ops {
            match *op {
                Op::H(q) => gates::apply_single(state, q, &gates::hadamard())?,
                Op::X(q) => gates::apply_single(state, q, &gates::pauli_x())?,
                Op::Y(q) => gates::apply_single(state, q, &gates::pauli_y())?,
                Op::Z(q) => gates::apply_single(state, q, &gates::pauli_z())?,
                Op::Rx(q, t) => gates::apply_single(state, q, &gates::rx(t))?,
                Op::Ry(q, t) => gates::apply_single(state, q, &gates::ry(t))?,
                Op::Rz(q, t) => gates::apply_single(state, q, &gates::rz(t))?,
                Op::Phase(q, p) => gates::apply_single(state, q, &gates::phase(p))?,
                Op::Cnot(c, t) => gates::apply_cnot(state, c, t)?,
                Op::Cz(a, b) => gates::apply_cz(state, a, b)?,
                Op::Swap(a, b) => gates::apply_swap(state, a, b)?,
                Op::ModeRotation { k, theta, alpha } => {
                    rotation::apply_complex(state.amplitudes_mut(), k, theta, alpha)?
                }
            }
        }
        Ok(())
    }

    /// The circuit applying the inverse operations in reverse order.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidArgument`] if the circuit contains an
    /// op whose inverse is not representable (none currently).
    pub fn inverse(&self) -> Result<Circuit> {
        let mut ops = Vec::with_capacity(self.ops.len());
        for op in self.ops.iter().rev() {
            ops.push(match *op {
                Op::H(q) => Op::H(q),
                Op::X(q) => Op::X(q),
                Op::Y(q) => Op::Y(q),
                Op::Z(q) => Op::Z(q),
                Op::Rx(q, t) => Op::Rx(q, -t),
                Op::Ry(q, t) => Op::Ry(q, -t),
                Op::Rz(q, t) => Op::Rz(q, -t),
                Op::Phase(q, p) => Op::Phase(q, -p),
                Op::Cnot(c, t) => Op::Cnot(c, t),
                Op::Cz(a, b) => Op::Cz(a, b),
                Op::Swap(a, b) => Op::Swap(a, b),
                Op::ModeRotation { k, theta, alpha } => {
                    if alpha != 0.0 {
                        // U(θ,α)⁻¹ is not itself a U(θ',α') of this form;
                        // only the real case inverts within the family.
                        return Err(SimError::InvalidArgument(
                            "cannot invert complex mode rotation within the gate family"
                                .to_string(),
                        ));
                    }
                    Op::ModeRotation {
                        k,
                        theta: -theta,
                        alpha: 0.0,
                    }
                }
            });
        }
        Ok(Circuit { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn builder_accumulates_ops() {
        let mut c = Circuit::new();
        assert!(c.is_empty());
        c.push(Op::H(0)).push(Op::Cnot(0, 1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.ops()[0], Op::H(0));
    }

    #[test]
    fn bell_circuit() {
        let mut c = Circuit::new();
        c.push(Op::H(0)).push(Op::Cnot(0, 1));
        let mut s = StateVector::zero_state(2);
        c.apply(&mut s).unwrap();
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[3] - 0.5).abs() < TOL);
    }

    #[test]
    fn ghz_circuit_on_three_qubits() {
        let mut c = Circuit::new();
        c.push(Op::H(0)).push(Op::Cnot(0, 1)).push(Op::Cnot(1, 2));
        let mut s = StateVector::zero_state(3);
        c.apply(&mut s).unwrap();
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[7] - 0.5).abs() < TOL);
    }

    #[test]
    fn inverse_restores_initial_state() {
        let mut c = Circuit::new();
        c.push(Op::Ry(0, 0.7))
            .push(Op::Rx(1, -0.4))
            .push(Op::Cnot(0, 1))
            .push(Op::Rz(0, 1.9))
            .push(Op::Phase(1, 0.3))
            .push(Op::Swap(0, 1))
            .push(Op::ModeRotation {
                k: 1,
                theta: 0.8,
                alpha: 0.0,
            });
        let mut s = StateVector::zero_state(2);
        c.apply(&mut s).unwrap();
        c.inverse().unwrap().apply(&mut s).unwrap();
        assert!((s.probability(0).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn inverse_of_complex_mode_rotation_is_rejected() {
        let mut c = Circuit::new();
        c.push(Op::ModeRotation {
            k: 0,
            theta: 0.5,
            alpha: 0.2,
        });
        assert!(c.inverse().is_err());
    }

    #[test]
    fn mode_rotation_in_circuit_matches_direct_call() {
        let mut c = Circuit::new();
        c.push(Op::ModeRotation {
            k: 2,
            theta: 0.6,
            alpha: 0.0,
        });
        let mut s1 = StateVector::uniform(2);
        c.apply(&mut s1).unwrap();
        let mut s2 = StateVector::uniform(2);
        crate::rotation::apply_complex(s2.amplitudes_mut(), 2, 0.6, 0.0).unwrap();
        for (a, b) in s1.amplitudes().iter().zip(s2.amplitudes()) {
            assert!(a.approx_eq(*b, TOL));
        }
    }

    #[test]
    fn errors_propagate_from_ops() {
        let mut c = Circuit::new();
        c.push(Op::H(5));
        let mut s = StateVector::zero_state(2);
        assert!(c.apply(&mut s).is_err());
    }

    #[test]
    fn pauli_ops_apply() {
        let mut c = Circuit::new();
        c.push(Op::X(0)).push(Op::Y(0)).push(Op::Z(0));
        let mut s = StateVector::zero_state(1);
        c.apply(&mut s).unwrap();
        // ZYX|0⟩ = ZY|1⟩ = Z(−i|0⟩)= −i|0⟩ — global phase only.
        assert!((s.probability(0).unwrap() - 1.0).abs() < TOL);
    }
}
