//! Hand-rolled state-vector quantum simulator.
//!
//! This crate is the simulation substrate the paper's experiments run on:
//! the paper evaluates its quantum network purely in (MATLAB) simulation,
//! and the reproduction hint calls for a hand-rolled state vector. The
//! crate provides:
//!
//! - [`complex::Complex64`] — a self-contained complex type (the
//!   `num-complex` crate is outside the allowed dependency set);
//! - [`state::StateVector`] — an n-qubit (2ⁿ-amplitude) state with norms,
//!   fidelity, probabilities and seeded measurement sampling;
//! - [`gates`] — the standard gate set applied by bit-twiddling, with a
//!   rayon-parallel path for large registers;
//! - [`circuit::Circuit`] — gate sequences with parameterised rotations;
//! - [`rotation`] — *mode rotations* `U(k,k+1)`: Givens rotations between
//!   adjacent computational-basis amplitudes. These are the paper's beam-
//!   splitter gates, which act on the N-dimensional amplitude vector rather
//!   than on a single qubit;
//! - [`projector::Projector`] — the `P1`/`P0` subspace projections used for
//!   compression;
//! - [`density::DensityMatrix`] — density matrices with partial trace and
//!   purity (used in analysis and tests);
//! - [`shots`] — finite-shot amplitude estimation, for studying how
//!   measurement noise would affect training on real hardware.

pub mod circuit;
pub mod complex;
pub mod density;
pub mod error;
pub mod gates;
pub mod projector;
pub mod rotation;
pub mod shots;
pub mod state;

pub use complex::Complex64;
pub use error::SimError;
pub use projector::Projector;
pub use state::StateVector;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;

/// Number of qubits needed to hold `dim`-dimensional data: `⌈log₂ dim⌉`.
///
/// The paper (Sec. II-A): "for N-dimensional data, at least ⌈log₂(N)⌉
/// qubits are required".
pub fn qubits_for_dim(dim: usize) -> usize {
    if dim <= 1 {
        return 0;
    }
    (usize::BITS - (dim - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counting_matches_paper_examples() {
        // Paper: 16-dimensional data needs four qubits.
        assert_eq!(qubits_for_dim(16), 4);
        // Paper: 8-dimensional data uses 3 qubits.
        assert_eq!(qubits_for_dim(8), 3);
        assert_eq!(qubits_for_dim(1), 0);
        assert_eq!(qubits_for_dim(2), 1);
        assert_eq!(qubits_for_dim(3), 2);
        assert_eq!(qubits_for_dim(9), 4);
        assert_eq!(qubits_for_dim(0), 0);
    }
}
