//! Density matrices, partial trace and purity.
//!
//! Used by analysis code and tests to verify the compression network's
//! behaviour in proper quantum-information terms: the compressed state of a
//! well-trained network keeps purity ≈ 1 after discarding the trash
//! subspace, which is the quantum-autoencoder success criterion underlying
//! the paper's loss.

use crate::complex::{Complex64, ZERO};
use crate::error::SimError;
use crate::state::StateVector;
use crate::Result;

/// A dim × dim density operator stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    dim: usize,
    data: Vec<Complex64>,
}

impl DensityMatrix {
    /// Rank-1 density matrix `|ψ⟩⟨ψ|` of a pure state.
    pub fn from_pure(state: &StateVector) -> Self {
        let dim = state.dim();
        let a = state.amplitudes();
        let mut data = vec![ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = a[i] * a[j].conj();
            }
        }
        DensityMatrix { dim, data }
    }

    /// Maximally mixed state `I/dim`.
    pub fn maximally_mixed(dim: usize) -> Self {
        let mut data = vec![ZERO; dim * dim];
        let p = Complex64::from_real(1.0 / dim as f64);
        for i in 0..dim {
            data[i * dim + i] = p;
        }
        DensityMatrix { dim, data }
    }

    /// Hilbert-space dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Element `ρ_{ij}`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.dim + j]
    }

    /// Trace `Tr ρ` (should be 1 for a valid state).
    pub fn trace(&self) -> Complex64 {
        (0..self.dim).map(|i| self.get(i, i)).sum()
    }

    /// Purity `Tr ρ²` — 1 for pure states, `1/dim` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // Tr ρ² = Σ_{ij} ρ_{ij} ρ_{ji} = Σ_{ij} |ρ_{ij}|² for Hermitian ρ.
        self.data.iter().map(|z| z.norm_sq()).sum()
    }

    /// True when `‖ρ − ρ†‖_max ≤ tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        for i in 0..self.dim {
            for j in 0..self.dim {
                if !self.get(i, j).approx_eq(self.get(j, i).conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Partial trace over a subset of qubits, keeping the rest.
    ///
    /// `traced` lists qubit indices (0 = least significant) to trace out.
    /// The dimension must be a power of two.
    ///
    /// # Errors
    /// - [`SimError::NotPowerOfTwo`] for non-qubit dimensions.
    /// - [`SimError::QubitOutOfRange`] for bad qubit indices.
    pub fn partial_trace(&self, traced: &[usize]) -> Result<DensityMatrix> {
        if !self.dim.is_power_of_two() {
            return Err(SimError::NotPowerOfTwo(self.dim));
        }
        let n = self.dim.trailing_zeros() as usize;
        for &q in traced {
            if q >= n {
                return Err(SimError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: n,
                });
            }
        }
        let kept: Vec<usize> = (0..n).filter(|q| !traced.contains(q)).collect();
        let kdim = 1usize << kept.len();
        let tdim = 1usize << traced.len();

        // Map (kept-index bits, traced-index bits) -> full index.
        let expand = |kbits: usize, tbits: usize| -> usize {
            let mut idx = 0usize;
            for (pos, &q) in kept.iter().enumerate() {
                if kbits & (1 << pos) != 0 {
                    idx |= 1 << q;
                }
            }
            for (pos, &q) in traced.iter().enumerate() {
                if tbits & (1 << pos) != 0 {
                    idx |= 1 << q;
                }
            }
            idx
        };

        let mut out = vec![ZERO; kdim * kdim];
        for ki in 0..kdim {
            for kj in 0..kdim {
                let mut acc = ZERO;
                for t in 0..tdim {
                    acc += self.get(expand(ki, t), expand(kj, t));
                }
                out[ki * kdim + kj] = acc;
            }
        }
        Ok(DensityMatrix {
            dim: kdim,
            data: out,
        })
    }

    /// Real part of the matrix as flat row-major data, with the largest
    /// imaginary magnitude found. Useful for interop with `qn-linalg`'s
    /// real symmetric eigensolver when the state is (near-)real.
    pub fn real_part(&self) -> (Vec<f64>, f64) {
        let mut max_im = 0.0_f64;
        let re = self
            .data
            .iter()
            .map(|z| {
                max_im = max_im.max(z.im.abs());
                z.re
            })
            .collect();
        (re, max_im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, Op};

    const TOL: f64 = 1e-12;

    #[test]
    fn pure_state_density_properties() {
        let s = StateVector::from_real(&[0.6, 0.8]).unwrap();
        let rho = DensityMatrix::from_pure(&s);
        assert!((rho.trace().re - 1.0).abs() < TOL);
        assert!(rho.trace().im.abs() < TOL);
        assert!((rho.purity() - 1.0).abs() < TOL);
        assert!(rho.is_hermitian(TOL));
        assert!((rho.get(0, 1).re - 0.48).abs() < TOL);
    }

    #[test]
    fn maximally_mixed_purity() {
        let rho = DensityMatrix::maximally_mixed(4);
        assert!((rho.purity() - 0.25).abs() < TOL);
        assert!((rho.trace().re - 1.0).abs() < TOL);
    }

    #[test]
    fn partial_trace_of_product_state_is_pure() {
        // |+⟩ ⊗ |0⟩: tracing out either qubit leaves a pure state.
        let plus = StateVector::uniform(1);
        let zero = StateVector::zero_state(1);
        let prod = plus.tensor(&zero);
        let rho = DensityMatrix::from_pure(&prod);
        let reduced = rho.partial_trace(&[0]).unwrap(); // trace out low qubit (|0⟩)
        assert_eq!(reduced.dim(), 2);
        assert!((reduced.purity() - 1.0).abs() < TOL);
    }

    #[test]
    fn partial_trace_of_bell_state_is_maximally_mixed() {
        let mut s = StateVector::zero_state(2);
        let mut c = Circuit::new();
        c.push(Op::H(0)).push(Op::Cnot(0, 1));
        c.apply(&mut s).unwrap();
        let rho = DensityMatrix::from_pure(&s);
        let reduced = rho.partial_trace(&[0]).unwrap();
        assert!((reduced.purity() - 0.5).abs() < TOL);
        assert!((reduced.get(0, 0).re - 0.5).abs() < TOL);
        assert!((reduced.get(1, 1).re - 0.5).abs() < TOL);
        assert!(reduced.get(0, 1).abs() < TOL);
    }

    #[test]
    fn partial_trace_validates_inputs() {
        let rho = DensityMatrix::maximally_mixed(4);
        assert!(rho.partial_trace(&[2]).is_err());
        let bad = DensityMatrix {
            dim: 3,
            data: vec![ZERO; 9],
        };
        assert!(bad.partial_trace(&[0]).is_err());
    }

    #[test]
    fn trace_preserved_under_partial_trace() {
        let s = StateVector::uniform(3);
        let rho = DensityMatrix::from_pure(&s);
        let reduced = rho.partial_trace(&[1]).unwrap();
        assert!((reduced.trace().re - 1.0).abs() < TOL);
        assert_eq!(reduced.dim(), 4);
    }

    #[test]
    fn real_part_reports_imaginary_magnitude() {
        let s =
            StateVector::from_amplitudes(vec![Complex64::new(0.6, 0.0), Complex64::new(0.0, 0.8)])
                .unwrap();
        let rho = DensityMatrix::from_pure(&s);
        let (_, max_im) = rho.real_part();
        assert!(max_im > 0.4); // off-diagonals are imaginary
        let real_state = StateVector::from_real(&[0.6, 0.8]).unwrap();
        let (_, max_im) = DensityMatrix::from_pure(&real_state).real_part();
        assert!(max_im < TOL);
    }
}
