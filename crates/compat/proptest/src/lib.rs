//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! - range strategies (`-10.0..10.0f64`, `1usize..16`), tuples of
//!   strategies, `proptest::collection::vec(strategy, len_or_range)`,
//!   and [`Strategy::prop_filter`];
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! - `prop_assert!` (maps to `assert!`).
//!
//! Sampling is deterministic (fixed seed per test body, advanced per
//! case) so failures reproduce; there is **no shrinking** — a failing
//! case panics with the assert message directly. That trades debugging
//! convenience for zero dependencies, which is the right trade while
//! crates.io is unreachable.

use std::ops::Range;

/// Test-runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed RNG; every test run samples the same cases.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty bound");
        let zone = u64::MAX - (u64::MAX % bound as u64);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % bound as u64) as usize;
            }
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Keep only values satisfying `pred` (rejection sampling, bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8, i32);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Filtered strategy (result of [`Strategy::prop_filter`]).
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "strategy filter rejected 1000 consecutive cases: {}",
            self.whence
        );
    }
}

/// Mapped strategy (result of [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: a fixed size or a range of sizes.
    pub trait SizeSpec {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeSpec for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeSpec for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below(self.end - self.start)
        }
    }

    /// Strategy for vectors of `element` values with `size` entries.
    pub fn vec<S: Strategy, L: SizeSpec>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Vector strategy (result of [`vec`]).
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                let run = || -> () { $body };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {}/{} failed in `{}`",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0..7.0f64, n in 1usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_lengths(v in crate::collection::vec(0.0..1.0f64, 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn vec_strategy_with_ranged_lengths(
            v in crate::collection::vec(0u32..10, 1..4)
        ) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn filters_apply(x in (0.0..1.0f64).prop_filter("nonzero", |v| *v > 0.5)) {
            prop_assert!(x > 0.5);
        }

        #[test]
        fn tuples_sample_componentwise((k, t) in (0usize..5, -1.0..1.0f64)) {
            prop_assert!(k < 5);
            prop_assert!((-1.0..1.0).contains(&t));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
