//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided (the single API this workspace uses),
//! delegating to `std::sync::mpsc`. The std channel is MPSC rather than
//! MPMC, which is sufficient for the workspace's single-consumer
//! streaming patterns.

/// Bounded/unbounded channels mirroring `crossbeam::channel`.
pub mod channel {
    /// Sending half of a bounded channel.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    /// Receiving half.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// A bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }

    /// An "unbounded" channel (std unbounded sender wrapped to the same
    /// shape is not type-compatible with [`Sender`], so a large bound is
    /// used instead; practically unbounded for streaming workloads).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(1 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_streams_in_order() {
        let (tx, rx) = channel::bounded::<usize>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<usize> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn receiver_iterates_until_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.iter().count(), 1);
    }
}
