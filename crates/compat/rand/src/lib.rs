//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API subset its code uses — nothing more:
//!
//! - [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded through SplitMix64);
//! - [`SeedableRng::seed_from_u64`];
//! - [`Rng::random`] for `f64`/`f32`/`u64`/`u32`/`bool`;
//! - [`Rng::random_range`] for integer and float ranges.
//!
//! Streams are deterministic per seed but are **not** the same streams
//! real `rand` produces; all workspace tests assert behavioural
//! properties rather than exact draw values, so the substitution is
//! transparent. If the real crate ever becomes available, deleting
//! `crates/compat/rand` and pointing the manifests at crates.io is the
//! only change needed.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T` (uniform on
    /// `[0,1)` for floats, uniform over all values for integers).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (half-open or inclusive). The output
    /// type parameter comes first (as in real `rand`) so usage context
    /// drives integer-literal inference for the range bounds.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling over an unsigned span, bias-free via rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty sampling bound");
    // Reject draws from the final partial block so every residue is
    // equally likely.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Ranges usable with [`Rng::random_range`] to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), state-expanded from the seed with SplitMix64.
    /// Passes BigCrush; period 2²⁵⁶ − 1.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let da: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let db: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn float_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn ranges_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&v));
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
