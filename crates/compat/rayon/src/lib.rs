//! Offline stand-in for the `rayon` crate.
//!
//! Implements exactly the parallel-iterator subset this workspace uses,
//! on plain `std::thread::scope` fork-join:
//!
//! - `slice.par_iter().map(f).collect::<Vec<_>>()`
//! - `range.into_par_iter().map(f).collect::<Vec<_>>()`
//! - `slice.par_chunks_mut(n).for_each(f)` (plus `.enumerate()`)
//! - `ThreadPoolBuilder::new().num_threads(n).build()?.install(f)`
//!
//! Work is split into contiguous blocks, one per worker; workers are
//! spawned per call. That is slower than rayon's work-stealing pool for
//! tiny closures but has identical semantics, and the workspace's
//! deterministic-reduction helpers (`qn-linalg::parallel`) already chunk
//! work coarsely. `install` scopes a thread-count override so the
//! `parallel_scaling` bench keeps measuring real 1/2/4/8-thread runs.

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of workers a parallel call should use right now.
fn current_threads() -> usize {
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The calling thread's [`ThreadPool::install`] override, for handing to
/// spawned workers. `POOL_THREADS` is a `thread_local!`, so a worker
/// spawned via `std::thread::scope` starts with no override — a nested
/// parallel call inside it would silently fall back to
/// `available_parallelism` and oversubscribe the installed pool. Every
/// spawn site captures the parent's override and re-installs it in the
/// worker.
fn ambient_override() -> Option<usize> {
    POOL_THREADS.with(|t| t.get())
}

/// Run `f` on a worker thread with the parent's pool override active.
fn with_override<R>(ambient: Option<usize>, f: impl FnOnce() -> R) -> R {
    POOL_THREADS.with(|t| t.set(ambient));
    f()
}

/// Run `f` over every item of `items` (mutable blocks) in parallel.
fn parallel_for_each_indexed<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let n = items.len();
    let workers = current_threads().clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    let mut blocks: Vec<Vec<(usize, T)>> = Vec::new();
    let mut current: Vec<(usize, T)> = Vec::with_capacity(chunk);
    for (i, item) in items.into_iter().enumerate() {
        current.push((i, item));
        if current.len() == chunk {
            blocks.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        blocks.push(current);
    }
    let ambient = ambient_override();
    std::thread::scope(|scope| {
        for block in blocks {
            let f = &f;
            scope.spawn(move || {
                with_override(ambient, || {
                    for (i, item) in block {
                        f(i, item);
                    }
                });
            });
        }
    });
}

/// A materialised "parallel iterator": items are known up front and every
/// adaptor either stays lazy per-index (`map`) or executes the fork-join.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Parallel map; evaluation happens at `collect`/`for_each`.
    pub fn map<U, F>(self, f: F) -> ParMap<I, F>
    where
        U: Send,
        F: Fn(I) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParEnumerate<I> {
        ParEnumerate { items: self.items }
    }

    /// Consume the items in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        parallel_for_each_indexed(self.items, |_, item| f(item));
    }
}

/// Lazy parallel map (result of [`ParIter::map`]).
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, U, F> ParMap<I, F>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    /// Execute the map across workers and collect in index order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let n = self.items.len();
        let workers = current_threads().clamp(1, n.max(1));
        let f = &self.f;
        if workers <= 1 || n <= 1 {
            return C::from(self.items.into_iter().map(f).collect());
        }
        let chunk = n.div_ceil(workers);
        let mut blocks: Vec<Vec<I>> = Vec::with_capacity(workers);
        let mut items = self.items;
        while items.len() > chunk {
            let rest = items.split_off(chunk);
            blocks.push(std::mem::replace(&mut items, rest));
        }
        blocks.push(items);
        let ambient = ambient_override();
        let results: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .into_iter()
                .map(|block| {
                    scope.spawn(move || {
                        with_override(ambient, || block.into_iter().map(f).collect::<Vec<U>>())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        C::from(results.into_iter().flatten().collect())
    }

    /// Execute the map for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = self.f;
        parallel_for_each_indexed(self.items, |_, item| g(f(item)));
    }
}

/// Enumerated parallel iterator (result of [`ParIter::enumerate`]).
pub struct ParEnumerate<I> {
    items: Vec<I>,
}

impl<I: Send> ParEnumerate<I> {
    /// Consume `(index, item)` pairs in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, I)) + Sync,
    {
        parallel_for_each_indexed(self.items, |i, item| f((i, item)));
    }
}

/// `.par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Shared-reference item type.
    type Item: Send + 'a;
    /// Build the parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.into_par_iter()` on owning collections and ranges.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// Build the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `.par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `size` (last may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced here; kept for
/// signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default (hardware) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 = hardware default, as in rayon).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Materialise the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in; `Result` kept for API compatibility.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            }),
        })
    }
}

/// A scoped thread-count policy: work run under [`ThreadPool::install`]
/// splits across this pool's worker count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|t| {
            let prev = t.get();
            t.set(Some(self.num_threads));
            let result = f();
            t.set(prev);
            result
        })
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// The glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let squares: Vec<usize> = (0usize..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 257);
        assert_eq!(squares[16], 256);
    }

    #[test]
    fn par_chunks_mut_covers_every_element() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(64).for_each(|chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn par_chunks_mut_enumerate_sees_chunk_indices() {
        let mut data = vec![0usize; 100];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i;
            }
        });
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, j / 10);
        }
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let sum: usize = pool.install(|| {
            let v: Vec<usize> = (0..100usize).into_par_iter().map(|i| i).collect();
            v.iter().sum()
        });
        assert_eq!(sum, 4950);
    }

    #[test]
    fn workers_inherit_the_installed_thread_count() {
        // A nested parallel call inside an installed pool's worker must
        // see the pool's thread count, not available_parallelism: the
        // thread_local override is re-installed in every spawned worker.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let max_inner = AtomicUsize::new(0);
        pool.install(|| {
            // Outer fan-out: >1 item per worker block so workers spawn.
            (0..8usize).into_par_iter().for_each(|_| {
                // Nested call: current_threads() inside the worker.
                let seen = super::current_threads();
                max_inner.fetch_max(seen, Ordering::Relaxed);
                // The nested parallel call itself must also work.
                let v: Vec<usize> = (0..4usize).into_par_iter().map(|i| i).collect();
                assert_eq!(v, vec![0, 1, 2, 3]);
            });
        });
        assert_eq!(
            max_inner.load(Ordering::Relaxed),
            2,
            "nested calls must inherit the installed 2-thread override"
        );
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let compute = || -> Vec<f64> {
            (0..500usize)
                .into_par_iter()
                .map(|i| (i as f64).sqrt().sin())
                .collect()
        };
        let base = compute();
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got = pool.install(compute);
            assert_eq!(got, base);
        }
    }
}
