//! Offline stand-in for the `criterion` crate.
//!
//! Provides the bench-definition API this workspace's `benches/` use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! `criterion_group!`/`criterion_main!` — backed by a simple but honest
//! timing loop: warm up, auto-calibrate the batch size to ~10 ms, then
//! take the median of several timed batches and report ns/iter plus
//! derived throughput. No statistics engine, no HTML reports; results go
//! to stdout. Good enough to track perf *trajectories* across PRs until
//! the real crate is available.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each timed batch should roughly run.
const TARGET_BATCH: Duration = Duration::from_millis(10);
/// Number of timed batches; the median is reported.
const BATCHES: usize = 7;

/// Measures one closure under `b.iter(...)`.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Time the routine: calibrate, run batches, record the median.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count ≈ TARGET_BATCH.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_BATCH || iters >= 1 << 30 {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                iters = ((TARGET_BATCH.as_nanos() as f64 / per_iter.max(0.1)).ceil() as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Time a routine with per-iteration setup; only the routine is
    /// measured. The batch-size hint is accepted for API compatibility
    /// but ignored (inputs are always regenerated per iteration).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate on routine-only time.
        let mut iters: u64 = 1;
        loop {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                spent += start.elapsed();
            }
            if spent >= TARGET_BATCH || iters >= 1 << 24 {
                let per_iter = spent.as_nanos() as f64 / iters as f64;
                iters = ((TARGET_BATCH.as_nanos() as f64 / per_iter.max(0.1)).ceil() as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                spent += start.elapsed();
            }
            samples.push(spent.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; criterion would batch many.
    SmallInput,
    /// Inputs are expensive to hold; criterion would batch few.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function/parameter` display form).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

fn report(full_name: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else {
        format!("{:8.2} ms", ns / 1_000_000.0)
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / ns * 1_000.0)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.2} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("bench {full_name:<48} {time}/iter{extra}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored knob kept for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored knob kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a routine that takes an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Benchmark a plain routine inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into()),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a standalone routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }
}

/// Define a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 16).to_string(), "f/16");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(8));
        g.bench_with_input(BenchmarkId::from_parameter(1), &1usize, |b, &n| {
            b.iter(|| n + 1);
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }
}
