//! Criterion bench: state-vector gate application vs register size —
//! the simulator substrate's core kernel, including the rayon-parallel
//! path that engages at 14+ qubits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qn_sim::{gates, StateVector};
use std::hint::black_box;

fn bench_single_qubit_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_apply/hadamard");
    for &n in &[8usize, 12, 14, 16, 18] {
        group.throughput(Throughput::Elements(1u64 << n));
        group.bench_with_input(BenchmarkId::new("qubits", n), &n, |b, &n| {
            let mut s = StateVector::uniform(n);
            b.iter(|| {
                gates::apply_single(black_box(&mut s), 0, &gates::hadamard())
                    .expect("gate applies");
            });
        });
    }
    group.finish();
}

fn bench_gate_position(c: &mut Criterion) {
    // Low qubits touch adjacent amplitudes (cache-friendly); high qubits
    // stride across the vector. Measures the locality spread.
    let n = 16;
    let mut group = c.benchmark_group("gate_apply/position_16q");
    for &q in &[0usize, 7, 15] {
        group.bench_with_input(BenchmarkId::new("qubit", q), &q, |b, &q| {
            let mut s = StateVector::uniform(n);
            b.iter(|| {
                gates::apply_single(black_box(&mut s), q, &gates::ry(0.3)).expect("gate applies");
            });
        });
    }
    group.finish();
}

fn bench_cnot(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_apply/cnot");
    for &n in &[10usize, 14, 16] {
        group.bench_with_input(BenchmarkId::new("qubits", n), &n, |b, &n| {
            let mut s = StateVector::uniform(n);
            b.iter(|| {
                gates::apply_cnot(black_box(&mut s), 0, n - 1).expect("gate applies");
            });
        });
    }
    group.finish();
}

fn bench_mode_rotation(c: &mut Criterion) {
    // The paper's gate touches exactly 2 amplitudes — O(1) regardless of
    // dimension; this is the whole point of the mesh representation.
    let mut group = c.benchmark_group("gate_apply/mode_rotation");
    for &dim in &[16usize, 1 << 10, 1 << 16] {
        group.bench_with_input(BenchmarkId::new("dim", dim), &dim, |b, &dim| {
            let mut v = vec![0.0; dim];
            v[0] = 1.0;
            b.iter(|| {
                qn_sim::rotation::apply_real(black_box(&mut v), 0, 0.01).expect("rotation applies");
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_qubit_gate,
    bench_gate_position,
    bench_cnot,
    bench_mode_rotation
);
criterion_main!(benches);
