//! Criterion bench: codec encode/decode throughput in tiles/sec across
//! the execution backends (scalar serial, scalar parallel, batched
//! panels) on identical inputs — the numbers recorded in
//! `BENCH_codec.json` (see `qn-bench`'s `bench_codec` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qn_codec::{BackendKind, Codec, CodecOptions};
use qn_image::{datasets, GrayImage};
use std::hint::black_box;

/// A codec + image fixture at the given square image size.
fn fixture(size: usize) -> (Codec, GrayImage, usize) {
    let img = datasets::grayscale_blobs(1, size, size, 42).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).expect("spectral model");
    let tiles = size.div_ceil(4) * size.div_ceil(4);
    (codec, img, tiles)
}

fn opts(backend: BackendKind) -> CodecOptions {
    CodecOptions {
        backend,
        inline_model: false,
        ..CodecOptions::default()
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_encode/tiles");
    for &size in &[64usize, 128, 256] {
        let (codec, img, tiles) = fixture(size);
        group.throughput(Throughput::Elements(tiles as u64));
        for backend in BackendKind::ALL {
            group.bench_with_input(BenchmarkId::new(backend.name(), size), &size, |b, _| {
                let o = opts(backend);
                b.iter(|| codec.encode_image(black_box(&img), &o).expect("encode"));
            });
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_decode/tiles");
    for &size in &[64usize, 128, 256] {
        let (codec, img, tiles) = fixture(size);
        let bytes = codec
            .encode_image(&img, &opts(BackendKind::Panel))
            .expect("encode fixture");
        group.throughput(Throughput::Elements(tiles as u64));
        for backend in BackendKind::ALL {
            group.bench_with_input(BenchmarkId::new(backend.name(), size), &size, |b, _| {
                b.iter(|| {
                    codec
                        .decode_bytes_with(black_box(&bytes), backend)
                        .expect("decode")
                });
            });
        }
    }
    group.finish();
}

fn bench_container_parse(c: &mut Criterion) {
    // Bitstream-only cost: parse without running the meshes.
    let (codec, img, tiles) = fixture(128);
    let bytes = codec
        .encode_image(&img, &opts(BackendKind::Panel))
        .expect("encode");
    let mut group = c.benchmark_group("codec_container");
    group.throughput(Throughput::Elements(tiles as u64));
    group.bench_function("parse/128", |b| {
        b.iter(|| qn_codec::Container::from_bytes(black_box(&bytes)).expect("parse"));
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_container_parse);
criterion_main!(benches);
