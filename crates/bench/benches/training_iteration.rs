//! Criterion bench: one full training iteration of each method at the
//! Table I scale — the per-iteration cost behind the "CPU runs" row.

use criterion::{criterion_group, criterion_main, Criterion};
use qn_classical::csc::{CscConfig, CscPipeline, SparseCoder};
use qn_core::config::NetworkConfig;
use qn_core::trainer::Trainer;
use qn_image::datasets;
use std::hint::black_box;

fn bench_qn_iteration(c: &mut Criterion) {
    let data = datasets::paper_binary_16(25);
    c.bench_function("train_iter/qn_paper_scale", |b| {
        // One-iteration trainer, rebuilt outside the timing loop where
        // possible; Trainer::train with 1 iteration measures a single
        // compression + reconstruction step including accuracy eval.
        let cfg = NetworkConfig::paper_default().with_iterations(1);
        b.iter_batched(
            || Trainer::new(cfg.clone(), &data).expect("valid configuration"),
            |mut t| {
                black_box(t.train().expect("training runs"));
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_csc_iteration(c: &mut Criterion) {
    let data = datasets::paper_binary_16(25);
    let mut group = c.benchmark_group("train_iter/csc_paper_scale");
    for (name, coder) in [
        (
            "fista_paper",
            SparseCoder::Fista {
                lambda: 0.05,
                inner_iterations: 150,
            },
        ),
        ("omp_strong", SparseCoder::Omp),
    ] {
        let cfg = CscConfig {
            iterations: 1,
            coder,
            ..CscConfig::paper_default()
        };
        group.bench_function(name, |b| {
            b.iter_batched(
                || CscPipeline::new(cfg.clone(), &data),
                |mut p| {
                    black_box(p.train());
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qn_iteration, bench_csc_iteration);
criterion_main!(benches);
