//! Criterion bench: the dense linear-algebra kernels behind the
//! baselines — Jacobi SVD (K-SVD's inner step), OMP coding, matmul.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_classical::omp::orthogonal_matching_pursuit;
use qn_classical::Dictionary;
use qn_linalg::random::{gaussian_matrix, rng_from_seed};
use qn_linalg::svd::svd;
use std::hint::black_box;

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/jacobi_svd");
    for &n in &[8usize, 16, 32, 64] {
        let mut rng = rng_from_seed(n as u64);
        let m = gaussian_matrix(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |b, _| {
            b.iter(|| black_box(svd(black_box(&m)).expect("svd converges")));
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/matmul");
    for &n in &[16usize, 64, 128, 256] {
        let mut rng = rng_from_seed(7);
        let a = gaussian_matrix(n, n, &mut rng);
        let b_m = gaussian_matrix(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(black_box(&b_m)).expect("shapes match")));
        });
    }
    group.finish();
}

fn bench_omp(c: &mut Criterion) {
    let mut rng = rng_from_seed(11);
    let dict = Dictionary::random(16, 16, &mut rng);
    let y: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.7).sin().abs()).collect();
    c.bench_function("linalg/omp_16x16_s4", |b| {
        b.iter(|| {
            black_box(orthogonal_matching_pursuit(
                black_box(&dict),
                black_box(&y),
                4,
                1e-12,
            ))
        });
    });
}

fn bench_clements(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/clements_decompose");
    for &n in &[8usize, 16, 32] {
        let u = qn_linalg::random::haar_orthogonal(n, 3);
        group.bench_with_input(BenchmarkId::new("dim", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    qn_photonic::clements::clements_decompose(black_box(&u), 1e-8)
                        .expect("orthogonal input"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svd, bench_matmul, bench_omp, bench_clements);
criterion_main!(benches);
