//! Criterion bench: mesh forward-pass cost vs mode count and depth —
//! the inner loop of every experiment (backs experiment A4's size sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qn_photonic::Mesh;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_forward_by_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_forward/dim");
    for &dim in &[16usize, 64, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(1);
        let mesh = Mesh::random(dim, 12, &mut rng);
        let v: Vec<f64> = (0..dim).map(|i| ((i as f64) * 0.1).sin()).collect();
        group.throughput(Throughput::Elements((12 * (dim - 1)) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            let mut buf = v.clone();
            b.iter(|| {
                buf.copy_from_slice(&v);
                mesh.forward_real(black_box(&mut buf));
            });
        });
    }
    group.finish();
}

fn bench_forward_by_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_forward/layers");
    for &layers in &[4usize, 12, 24, 48] {
        let mut rng = StdRng::seed_from_u64(2);
        let mesh = Mesh::random(16, layers, &mut rng);
        let v: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.2).cos()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, _| {
            let mut buf = v.clone();
            b.iter(|| {
                buf.copy_from_slice(&v);
                mesh.forward_real(black_box(&mut buf));
            });
        });
    }
    group.finish();
}

fn bench_mesh_as_matrix(c: &mut Criterion) {
    // Dense materialisation (used by decompositions and tests).
    let mut rng = StdRng::seed_from_u64(3);
    let mesh = Mesh::random(16, 12, &mut rng);
    c.bench_function("mesh_as_matrix/16x12", |b| {
        b.iter(|| black_box(mesh.as_matrix()));
    });
}

criterion_group!(
    benches,
    bench_forward_by_dim,
    bench_forward_by_layers,
    bench_mesh_as_matrix
);
criterion_main!(benches);
