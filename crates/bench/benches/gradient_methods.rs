//! Criterion bench: gradient computation cost per method (backs
//! experiment A1). The analytic backprop is O(P·N) per sample while the
//! finite differences are O(P²·N); this bench quantifies the gap at the
//! paper's scale.

use criterion::{criterion_group, criterion_main, Criterion};
use qn_core::compression::CompressionNetwork;
use qn_core::config::{CompressionTargetKind, SubspaceKind};
use qn_core::encoding;
use qn_core::gradient::{loss_and_gradient, GradientMethod};
use qn_image::datasets;
use qn_photonic::Mesh;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn paper_scale_setup() -> (CompressionNetwork, Vec<Vec<f64>>) {
    let data = datasets::paper_binary_16(25);
    let inputs: Vec<Vec<f64>> = encoding::encode_images(&data, 16)
        .expect("dataset encodes")
        .into_iter()
        .map(|e| e.amplitudes)
        .collect();
    let mut rng = StdRng::seed_from_u64(5);
    let net = CompressionNetwork::new(
        Mesh::random(16, 12, &mut rng),
        4,
        SubspaceKind::KeepLast,
        CompressionTargetKind::TrashPenalty,
    )
    .expect("valid network");
    (net, inputs)
}

fn bench_gradient_methods(c: &mut Criterion) {
    let (net, inputs) = paper_scale_setup();
    let residual = |i: usize, out: &[f64], buf: &mut [f64]| net.residual(i, out, buf);
    let mut group = c.benchmark_group("gradient/paper_scale_12x15_params_25_samples");
    for (name, method) in [
        ("analytic", GradientMethod::Analytic),
        (
            "central_1e-6",
            GradientMethod::CentralDifference { delta: 1e-6 },
        ),
        ("forward_1e-8_paper", GradientMethod::paper()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(loss_and_gradient(
                    net.mesh(),
                    black_box(&inputs),
                    &residual,
                    method,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gradient_methods);
criterion_main!(benches);
