//! Criterion bench (experiment A5): rayon thread-count scaling of the
//! batch gradient — the workspace's dominant parallel workload. Each
//! thread count runs in its own rayon pool; results must be *identical*
//! across counts (deterministic reductions), only the speed changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_core::compression::CompressionNetwork;
use qn_core::config::{CompressionTargetKind, SubspaceKind};
use qn_core::gradient::{loss_and_gradient, GradientMethod};
use qn_image::datasets;
use qn_photonic::Mesh;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn setup(samples: usize, dim_side: usize, layers: usize) -> (CompressionNetwork, Vec<Vec<f64>>) {
    let n = dim_side * dim_side;
    let data = datasets::low_rank_binary(samples, dim_side, dim_side, n / 4, 5);
    let inputs: Vec<Vec<f64>> = qn_core::encoding::encode_images(&data, n)
        .expect("dataset encodes")
        .into_iter()
        .map(|e| e.amplitudes)
        .collect();
    let mut rng = StdRng::seed_from_u64(5);
    let net = CompressionNetwork::new(
        Mesh::random(n, layers, &mut rng),
        n / 4,
        SubspaceKind::KeepLast,
        CompressionTargetKind::TrashPenalty,
    )
    .expect("valid network");
    (net, inputs)
}

fn bench_thread_scaling(c: &mut Criterion) {
    // A batch big enough to parallelise: 256 samples of an 8×8 problem.
    let (net, inputs) = setup(256, 8, 8);
    let max_threads = std::thread::available_parallelism().map_or(4, |p| p.get());

    let mut group = c.benchmark_group("parallel/batch_gradient_256x64");
    let mut reference: Option<(f64, Vec<f64>)> = None;
    // Deduplicated, capped thread counts (criterion IDs must be unique).
    let mut counts: Vec<usize> = [1usize, 2, 4, max_threads]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    counts.sort_unstable();
    counts.dedup();
    for threads in counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        // Determinism check: every pool must produce identical results.
        let result = pool.install(|| {
            loss_and_gradient(
                net.mesh(),
                &inputs,
                &|i, out, buf| net.residual(i, out, buf),
                GradientMethod::Analytic,
            )
        });
        match &reference {
            None => reference = Some(result),
            Some((l, g)) => {
                assert_eq!(*l, result.0, "loss differs at {threads} threads");
                assert_eq!(*g, result.1, "gradient differs at {threads} threads");
            }
        }
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                pool.install(|| {
                    black_box(loss_and_gradient(
                        net.mesh(),
                        black_box(&inputs),
                        &|i, out, buf| net.residual(i, out, buf),
                        GradientMethod::Analytic,
                    ))
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
