//! Experiment **A8**: real vs fully-complex network — the paper's stated
//! future work ("retain the phase parameter α … build a fully complex
//! quantum network … directly solve the problem of compression and
//! recovery of known or unknown quantum states").
//!
//! Task: learn to map a set of *complex* quantum states to target states
//! whose relative phases differ from the inputs'. A real mesh (α ≡ 0)
//! cannot rotate phases, so its loss must plateau; the complex mesh
//! (trainable θ and α) should succeed.
//!
//! Output: `results/ablation_complex.csv` + stdout table.

use qn_bench::{results_dir, write_csv, Table};
use qn_core::complexnet::ComplexNetwork;
use qn_sim::complex::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn phase_task() -> (Vec<Vec<Complex64>>, Vec<Vec<Complex64>>) {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let c = Complex64::new;
    // Inputs carry ±i relative phases; targets are the corresponding
    // *real* states — exactly a phase-rotation problem.
    let inputs = vec![
        vec![c(s, 0.0), c(0.0, s), c(0.0, 0.0), c(0.0, 0.0)],
        vec![c(s, 0.0), c(0.0, -s), c(0.0, 0.0), c(0.0, 0.0)],
        vec![c(0.0, 0.0), c(0.0, 0.0), c(s, 0.0), c(0.0, s)],
    ];
    let targets = vec![
        vec![c(s, 0.0), c(s, 0.0), c(0.0, 0.0), c(0.0, 0.0)],
        vec![c(s, 0.0), c(-s, 0.0), c(0.0, 0.0), c(0.0, 0.0)],
        vec![c(0.0, 0.0), c(0.0, 0.0), c(s, 0.0), c(s, 0.0)],
    ];
    (inputs, targets)
}

fn main() {
    let (inputs, targets) = phase_task();
    let iterations = 400;
    let mut rng = StdRng::seed_from_u64(5);

    // Complex network: trainable θ AND α.
    let mut complex_net = ComplexNetwork::random(4, 4, 0.3, &mut rng).expect("valid network");
    let complex_curve = complex_net.fit_pairs(&inputs, &targets, 0.1, iterations);

    // "Real" network: same machinery, but α is pinned to zero — the
    // paper's α ≡ 0 constraint (only θ descends).
    let mut real_net = ComplexNetwork::random(4, 4, 0.3, &mut rng).expect("valid network");
    let p = real_net.thetas().len();
    let init_thetas = real_net.thetas().to_vec();
    real_net.set_parameters(&init_thetas, &vec![0.0; p]);
    let mut real_curve = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        real_curve.push(real_net.loss(&inputs, &targets));
        let g = real_net.gradient(&inputs, &targets, 1e-6);
        let mut thetas = real_net.thetas().to_vec();
        for (i, t) in thetas.iter_mut().enumerate() {
            *t -= 0.1 * g[i];
        }
        real_net.set_parameters(&thetas, &vec![0.0; p]);
    }

    let mut t = Table::new(&["network", "loss iter0", "loss final"]);
    t.row(&[
        "complex (θ, α trainable)".into(),
        format!("{:.4}", complex_curve[0]),
        format!("{:.2e}", complex_curve.last().expect("non-empty")),
    ]);
    t.row(&[
        "real (α ≡ 0, paper)".into(),
        format!("{:.4}", real_curve[0]),
        format!("{:.4}", real_curve.last().expect("non-empty")),
    ]);
    println!("{}", t.render());
    println!(
        "The real network cannot rotate relative phases, so its loss \
         plateaus — matching the paper's own limitation statement."
    );

    let rows: Vec<Vec<f64>> = (0..iterations)
        .map(|i| vec![i as f64, complex_curve[i], real_curve[i]])
        .collect();
    write_csv(
        &results_dir().join("ablation_complex.csv"),
        &["iteration", "complex_loss", "real_loss"],
        &rows,
    );
}
