//! Codec throughput recorder: measures encode/decode tiles/sec for the
//! scalar, scalar-parallel and panel execution backends on identical
//! inputs, prints a table, and writes the numbers to `BENCH_codec.json`
//! at the workspace root — the machine-readable trail the ROADMAP's
//! batching claims point at.
//!
//! Usage: `cargo run --release -p qn-bench --bin bench_codec [size]`
//! (default image size 256; the tile grid is size²/16).

use qn_bench::results_dir;
use qn_codec::{BackendKind, Codec, CodecOptions};
use qn_image::datasets;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Median-of-runs timing for one closure, in seconds per call.
fn time_median<F: FnMut()>(mut f: F, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("size must be a number"))
        .unwrap_or(256);
    let runs = 9;

    let img = datasets::grayscale_blobs(1, size, size, 42).remove(0);
    let tile_size = CodecOptions::default().tile_size;
    let codec = Codec::spectral_for_image(&img, tile_size, 8).expect("spectral model");
    let tiles = size.div_ceil(tile_size) * size.div_ceil(tile_size);

    println!("codec throughput, {size}x{size} image, {tiles} tiles, median of {runs} runs");
    println!(
        "{:<16} {:>14} {:>14}",
        "backend", "enc tiles/s", "dec tiles/s"
    );

    let mut entries = String::new();
    let mut reference: Option<Vec<u8>> = None;
    for backend in BackendKind::ALL {
        let opts = CodecOptions {
            backend,
            inline_model: false,
            ..CodecOptions::default()
        };
        let bytes = codec.encode_image(&img, &opts).expect("encode");
        // Backends must agree byte-for-byte before their speed means anything.
        match &reference {
            None => reference = Some(bytes.clone()),
            Some(r) => assert_eq!(&bytes, r, "{backend}: container bytes diverged"),
        }
        let enc_s = time_median(
            || {
                black_box(codec.encode_image(black_box(&img), &opts).expect("encode"));
            },
            runs,
        );
        let dec_s = time_median(
            || {
                black_box(
                    codec
                        .decode_bytes_with(black_box(&bytes), backend)
                        .expect("decode"),
                );
            },
            runs,
        );
        let enc_tps = tiles as f64 / enc_s;
        let dec_tps = tiles as f64 / dec_s;
        println!("{:<16} {:>14.0} {:>14.0}", backend.name(), enc_tps, dec_tps);
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        write!(
            entries,
            "    {{\"backend\": \"{}\", \"encode_tiles_per_sec\": {:.0}, \"decode_tiles_per_sec\": {:.0}}}",
            backend.name(),
            enc_tps,
            dec_tps
        )
        .expect("write entry");
    }

    let json = format!(
        "{{\n  \"bench\": \"codec_throughput\",\n  \"image\": \"{size}x{size}\",\n  \"tiles\": {tiles},\n  \"runs\": {runs},\n  \"threads\": {},\n  \"results\": [\n{entries}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    // results_dir() is <root>/results; BENCH_codec.json lives at the root.
    let path = results_dir()
        .parent()
        .expect("results dir has a parent")
        .join("BENCH_codec.json");
    std::fs::write(&path, &json).expect("write BENCH_codec.json");
    println!("wrote {}", path.display());
}
