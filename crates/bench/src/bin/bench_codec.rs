//! Codec throughput recorder: measures encode/decode tiles/sec for
//! every execution backend on identical inputs — pinned to a one-thread
//! pool so the per-backend rows are true single-core numbers on any
//! host — then sweeps a thread axis over the widest backend, prints a
//! table, and writes the numbers to `BENCH_codec.json` at the workspace
//! root — the machine-readable trail the ROADMAP's batching claims
//! point at.
//!
//! Usage: `cargo run --release -p qn-bench --bin bench_codec [size]`
//! (default image size 256; the tile grid is size²/16).

use qn_bench::results_dir;
use qn_codec::{BackendKind, Codec, CodecOptions};
use qn_image::datasets;
use rayon::ThreadPoolBuilder;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Thread counts swept over the widest backend. Counts above the
/// host's parallelism still run (the pool spawns that many workers);
/// their rows record what oversubscription costs.
const THREAD_AXIS: [usize; 4] = [1, 2, 4, 8];

/// Median-of-runs timing for one closure, in seconds per call.
fn time_median<F: FnMut()>(mut f: F, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Median encode and decode tiles/sec for one backend on the calling
/// thread's pool.
fn measure(
    codec: &Codec,
    img: &qn_image::GrayImage,
    bytes: &[u8],
    backend: BackendKind,
    tiles: usize,
    runs: usize,
) -> (f64, f64) {
    let opts = CodecOptions {
        backend,
        inline_model: false,
        ..CodecOptions::default()
    };
    let enc_s = time_median(
        || {
            black_box(codec.encode_image(black_box(img), &opts).expect("encode"));
        },
        runs,
    );
    let dec_s = time_median(
        || {
            black_box(
                codec
                    .decode_bytes_with(black_box(bytes), backend)
                    .expect("decode"),
            );
        },
        runs,
    );
    (tiles as f64 / enc_s, tiles as f64 / dec_s)
}

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("size must be a number"))
        .unwrap_or(256);
    let runs = 15;

    let img = datasets::grayscale_blobs(1, size, size, 42).remove(0);
    let tile_size = CodecOptions::default().tile_size;
    let codec = Codec::spectral_for_image(&img, tile_size, 8).expect("spectral model");
    let tiles = size.div_ceil(tile_size) * size.div_ceil(tile_size);
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "codec throughput, {size}x{size} image, {tiles} tiles, median of {runs} runs, \
         host parallelism {host_threads}"
    );
    println!(
        "{:<16} {:>8} {:>14} {:>14}",
        "backend", "threads", "enc tiles/s", "dec tiles/s"
    );

    let mut entries = String::new();
    let mut push_entry = |backend: BackendKind, threads: usize, enc_tps: f64, dec_tps: f64| {
        println!(
            "{:<16} {:>8} {:>14.0} {:>14.0}",
            backend.name(),
            threads,
            enc_tps,
            dec_tps
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        write!(
            entries,
            "    {{\"backend\": \"{}\", \"threads\": {threads}, \
             \"encode_tiles_per_sec\": {enc_tps:.0}, \"decode_tiles_per_sec\": {dec_tps:.0}}}",
            backend.name(),
        )
        .expect("write entry");
    };

    // Backends must agree byte-for-byte before their speed means
    // anything (the declared contracts guarantee value-equal mesh
    // outputs, hence identical containers).
    let reference = {
        let opts = CodecOptions {
            backend: BackendKind::Scalar,
            inline_model: false,
            ..CodecOptions::default()
        };
        codec.encode_image(&img, &opts).expect("encode")
    };
    for backend in BackendKind::ALL {
        let opts = CodecOptions {
            backend,
            inline_model: false,
            ..CodecOptions::default()
        };
        let bytes = codec.encode_image(&img, &opts).expect("encode");
        assert_eq!(bytes, reference, "{backend}: container bytes diverged");
    }

    // Single-core rows: every backend inside a one-thread pool.
    let single = ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("one-thread pool");
    for backend in BackendKind::ALL {
        let (enc_tps, dec_tps) =
            single.install(|| measure(&codec, &img, &reference, backend, tiles, runs));
        push_entry(backend, 1, enc_tps, dec_tps);
    }

    // Thread axis over the widest backend: the chunked panel schedule
    // is thread-count invariant, so these rows move only in speed,
    // never in bytes.
    for threads in THREAD_AXIS {
        if threads == 1 {
            continue; // already covered by the single-core row
        }
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("bench pool");
        let (enc_tps, dec_tps) =
            pool.install(|| measure(&codec, &img, &reference, BackendKind::Simd, tiles, runs));
        push_entry(BackendKind::Simd, threads, enc_tps, dec_tps);
    }

    let json = format!(
        "{{\n  \"bench\": \"codec_throughput\",\n  \"image\": \"{size}x{size}\",\n  \
         \"tiles\": {tiles},\n  \"runs\": {runs},\n  \"host_parallelism\": {host_threads},\n  \
         \"results\": [\n{entries}\n  ]\n}}\n",
    );
    // results_dir() is <root>/results; BENCH_codec.json lives at the root.
    let path = results_dir()
        .parent()
        .expect("results dir has a parent")
        .join("BENCH_codec.json");
    std::fs::write(&path, &json).expect("write BENCH_codec.json");
    println!("wrote {}", path.display());
}
