//! Open-loop load recorder for the event-driven serving core: ≥1000
//! concurrent connections each firing Poisson arrivals at the server,
//! swept across offered rates until saturation. Latency is measured
//! from the *scheduled* arrival time, not the send time, so queueing
//! behind a slow reply is charged to the server (no coordinated
//! omission). Typed `BUSY` sheds are counted separately from
//! successes and from hard errors — under overload the server must
//! degrade by shedding, not by dropping connections.
//! Results land in `BENCH_load.json` at the workspace root.
//!
//! Usage: `cargo run --release -p qn-bench --bin bench_load [--smoke]`
//! `--smoke` shrinks the sweep to a few hundred connections and a
//! couple of seconds per rate for CI.

use qn_bench::results_dir;
use qn_codec::model::encode_model;
use qn_codec::{Codec, CodecOptions};
use qn_image::datasets;
use qn_serve::client::model_encode_request;
use qn_serve::protocol::{ErrorCode, Frame, Opcode};
use qn_serve::{spawn, Client, ServerConfig};
use std::fmt::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

const IMAGE_SIZE: usize = 32;
const MAX_INFLIGHT: usize = 256;

/// Small deterministic PRNG (xorshift64*) so every connection gets an
/// independent, reproducible Poisson stream without external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in (0, 1].
    fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival gap for a per-connection rate.
    fn exp_gap(&mut self, per_sec: f64) -> Duration {
        Duration::from_secs_f64(-self.uniform().ln() / per_sec)
    }
}

struct ConnTally {
    ok: u64,
    busy: u64,
    errors: u64,
    latencies_ns: Vec<u64>,
}

/// One virtual client: connect, then fire the connection's Poisson
/// schedule until the horizon, measuring reply latency from each
/// request's scheduled arrival.
fn drive_conn(
    addr: std::net::SocketAddr,
    payload: &[u8],
    seed: u64,
    per_conn_rps: f64,
    start_gate: &Barrier,
    duration: Duration,
    connected: &AtomicU64,
) -> ConnTally {
    let mut stream = TcpStream::connect(addr).expect("connect load client");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("client read timeout");
    let _ = stream.set_nodelay(true);
    connected.fetch_add(1, Ordering::Relaxed);
    start_gate.wait();

    let start = Instant::now();
    let mut rng = Rng::new(seed);
    let mut scheduled = rng.exp_gap(per_conn_rps);
    let mut tally = ConnTally {
        ok: 0,
        busy: 0,
        errors: 0,
        latencies_ns: Vec::new(),
    };
    let mut request_id: u32 = 1;
    while scheduled < duration {
        let due = start + scheduled;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let frame = Frame::request(Opcode::Encode, request_id, payload.to_vec());
        request_id = request_id.wrapping_add(1).max(1);
        if frame.write_to(&mut stream).is_err() {
            tally.errors += 1;
            break;
        }
        match Frame::read_from(&mut stream) {
            Ok(reply) if reply.status == 0 => {
                tally.ok += 1;
                tally
                    .latencies_ns
                    .push(due.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            Ok(reply) if reply.status == ErrorCode::Busy as u16 => tally.busy += 1,
            Ok(_) => tally.errors += 1,
            Err(_) => {
                tally.errors += 1;
                break;
            }
        }
        scheduled += rng.exp_gap(per_conn_rps);
    }
    tally
}

fn percentile_ms(sorted_ns: &[u64], per_mille: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ns.len() * per_mille / 1000).min(sorted_ns.len() - 1);
    sorted_ns[idx] as f64 / 1e6
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (conns, rates, duration) = if smoke {
        (200usize, vec![500.0f64, 2_000.0], Duration::from_secs(2))
    } else {
        (
            1_000usize,
            vec![1_000.0f64, 2_000.0, 4_000.0, 8_000.0],
            Duration::from_secs(8),
        )
    };

    let img = datasets::grayscale_blobs(1, IMAGE_SIZE, IMAGE_SIZE, 7).remove(0);
    let opts = CodecOptions {
        tile_size: 16,
        inline_model: false,
        ..CodecOptions::default()
    };
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).expect("spectral model");

    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: Duration::from_millis(1),
        max_inflight: MAX_INFLIGHT,
        ..ServerConfig::default()
    })
    .expect("spawn load server");
    let addr = server.addr();

    // Pre-load the model so each measured request is a pure encode —
    // the serving core is under test, not model fitting.
    let mut warm = Client::connect(addr).expect("warm connect");
    let id = warm
        .load_model(&encode_model(codec.model()))
        .expect("load model");
    assert_eq!(id, codec.model_id());
    let payload = model_encode_request(&img, &opts, id).to_payload();
    let offline = codec.encode_image(&img, &opts).expect("offline encode");
    assert_eq!(
        warm.encode(&model_encode_request(&img, &opts, id))
            .expect("warm encode"),
        offline,
        "remote bytes diverged before load"
    );
    drop(warm);
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .max(8);

    println!(
        "serve load, {IMAGE_SIZE}x{IMAGE_SIZE} spectral encode, {conns} connections, \
         max_inflight {MAX_INFLIGHT}, {}s per rate",
        duration.as_secs()
    );
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>8} {:>10} {:>10} {:>10}",
        "offered", "achieved", "ok", "busy", "errors", "p50 ms", "p99 ms", "p999 ms"
    );

    let mut entries = String::new();
    let mut saturation_rps = 0.0f64;
    for &offered in &rates {
        let per_conn_rps = offered / conns as f64;
        let gate = Barrier::new(conns + 1);
        let connected = AtomicU64::new(0);
        let tallies: Vec<ConnTally> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|i| {
                    let (gate, connected, payload) = (&gate, &connected, &payload[..]);
                    std::thread::Builder::new()
                        .stack_size(128 * 1024)
                        .spawn_scoped(scope, move || {
                            drive_conn(
                                addr,
                                payload,
                                (offered as u64) << 16 | i as u64,
                                per_conn_rps,
                                gate,
                                duration,
                                connected,
                            )
                        })
                        .expect("spawn load thread")
                })
                .collect();
            gate.wait();
            handles
                .into_iter()
                .map(|h| h.join().expect("load thread"))
                .collect()
        });
        assert_eq!(
            connected.load(Ordering::Relaxed),
            conns as u64,
            "not every client connected"
        );

        let (mut ok, mut busy, mut errors) = (0u64, 0u64, 0u64);
        let mut latencies: Vec<u64> = Vec::new();
        for t in &tallies {
            ok += t.ok;
            busy += t.busy;
            errors += t.errors;
            latencies.extend_from_slice(&t.latencies_ns);
        }
        latencies.sort_unstable();
        let achieved = ok as f64 / duration.as_secs_f64();
        saturation_rps = saturation_rps.max(achieved);
        let p50 = percentile_ms(&latencies, 500);
        let p99 = percentile_ms(&latencies, 990);
        let p999 = percentile_ms(&latencies, 999);
        println!(
            "{:>12.0} {:>12.1} {:>10} {:>10} {:>8} {:>10.2} {:>10.2} {:>10.2}",
            offered, achieved, ok, busy, errors, p50, p99, p999
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        write!(
            entries,
            "    {{\"offered_rps\": {offered:.0}, \"achieved_rps\": {achieved:.1}, \
             \"ok\": {ok}, \"busy\": {busy}, \"errors\": {errors}, \
             \"latency_p50_ms\": {p50:.3}, \"latency_p99_ms\": {p99:.3}, \
             \"latency_p999_ms\": {p999:.3}}}"
        )
        .expect("write entry");
    }
    server.shutdown();

    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"image\": \"{IMAGE_SIZE}x{IMAGE_SIZE}\",\n  \
         \"connections\": {conns},\n  \"max_inflight\": {MAX_INFLIGHT},\n  \
         \"workers\": {workers},\n  \"duration_secs_per_rate\": {},\n  \
         \"smoke\": {smoke},\n  \"saturation_rps\": {saturation_rps:.1},\n  \
         \"results\": [\n{entries}\n  ]\n}}\n",
        duration.as_secs(),
    );
    let path = results_dir()
        .parent()
        .expect("results dir has a parent")
        .join("BENCH_load.json");
    std::fs::write(&path, &json).expect("write BENCH_load.json");
    println!(
        "saturation {saturation_rps:.1} req/s; wrote {}",
        path.display()
    );
}
