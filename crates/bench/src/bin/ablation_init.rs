//! Experiment **A3**: initialisation ablation.
//!
//! The paper notes "θ can be initialized randomly or uniformly; different
//! initialization methods will bring different training effects, and
//! subsequent initialization research has also made progress". This
//! binary quantifies that: uniform-random vs small-random vs identity vs
//! the spectral (PCA/Clements) initialisation, which starts *at* the
//! optimum of the compression loss.
//!
//! Output: `results/ablation_init.csv` (loss curves) + stdout table.

use qn_bench::{results_dir, write_csv, Table};
use qn_core::config::{InitStrategy, NetworkConfig};
use qn_core::trainer::Trainer;
use qn_image::datasets;

fn main() {
    let data = datasets::paper_binary_16_hard(25); // non-trivial bound
    let strategies: Vec<(&str, InitStrategy)> = vec![
        ("uniform [0,2π)", InitStrategy::RandomUniform),
        ("small ±0.3", InitStrategy::SmallRandom(0.3)),
        ("identity", InitStrategy::Identity),
        ("spectral (PCA)", InitStrategy::Spectral),
    ];

    let mut t = Table::new(&[
        "init",
        "L_C iter0",
        "L_C final",
        "iters to 2×bound",
        "acc_binary",
    ]);
    let mut curves: Vec<Vec<f64>> = Vec::new();
    let inputs: Vec<Vec<f64>> = qn_core::encoding::encode_images(&data, 16)
        .expect("dataset encodes")
        .into_iter()
        .map(|e| e.amplitudes)
        .collect();
    let bound =
        qn_core::spectral::compression_loss_lower_bound(&inputs, 16, 4).expect("bound computable");
    println!("PCA bound (sum): {bound:.4}\n");

    let mut all_rows: Vec<Vec<f64>> = Vec::new();
    for (idx, (name, init)) in strategies.iter().enumerate() {
        let cfg = NetworkConfig::paper_default().with_init(*init);
        let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
        let report = trainer.train().expect("training runs");
        let h = &report.history;
        let first = h.compression_loss[0].sum;
        let last = h.compression_loss.last().expect("non-empty").sum;
        let to_bound = h
            .compression_loss
            .iter()
            .position(|l| l.sum <= 2.0 * bound)
            .map_or("never".to_string(), |i| i.to_string());
        t.row(&[
            name.to_string(),
            format!("{first:.4}"),
            format!("{last:.4}"),
            to_bound,
            format!("{:.2}%", report.max_accuracy_binary),
        ]);
        curves.push(h.compression_loss.iter().map(|l| l.sum).collect());
        for (it, l) in h.compression_loss.iter().enumerate() {
            all_rows.push(vec![idx as f64, it as f64, l.sum]);
        }
    }
    println!("{}", t.render());
    write_csv(
        &results_dir().join("ablation_init.csv"),
        &["strategy", "iteration", "lc_sum"],
        &all_rows,
    );
}
