//! Quality recorder: regenerates `BENCH_quality.json` at the workspace
//! root — the checked-in rate–distortion trail behind the "Quality
//! gates" CI step. Runs the full default grid over every registry
//! dataset with all classical baselines, checks the pinned gates, and
//! refuses to write a report that fails them (a regressed trail must
//! never silently replace a healthy one).
//!
//! Usage: `cargo run --release -p qn-bench --bin bench_quality`.
//! The output is byte-stable across reruns (seed 0, no timings), so
//! `git diff BENCH_quality.json` after a codec change shows exactly
//! which RD points moved.

use qn_bench::results_dir;
use qn_eval::report::BaselineSet;
use qn_eval::{gates, registry, Grid, QualityGates, QualityReport};

fn main() {
    let datasets = registry::all_builtin(0);
    let grid = Grid::default_grid();
    let report = QualityReport::build(&datasets, &grid, &BaselineSet::all(), false, 0)
        .expect("quality sweep");
    print!("{}", report.human_table());

    match gates::check(&report, &QualityGates::PINNED) {
        Ok(outcome) => println!(
            "quality gates: OK ({:.2} dB, {:.3} bpp at the golden point)",
            outcome.psnr_db, outcome.bpp
        ),
        Err(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            panic!("refusing to write BENCH_quality.json over a gate failure");
        }
    }

    // results_dir() is <root>/results; BENCH_quality.json lives at the root.
    let path = results_dir()
        .parent()
        .expect("results dir has a parent")
        .join("BENCH_quality.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_quality.json");
    println!("wrote {}", path.display());
}
