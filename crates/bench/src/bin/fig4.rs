//! Reproduce **Fig. 4** (experiments E1–E5 in DESIGN.md): the full
//! training run of the paper's Sec. IV.
//!
//! Paper setting: 25 binary 4×4 images, N = 16, d = 4, l_C = 12,
//! l_R = 14, 150 iterations. We run 300 iterations (the strict Eq. 10
//! tolerance of 0.01 needs the extra depth with our optimiser; the
//! binary-threshold accuracy of §IV-B saturates well within the paper's
//! 150) and report both checkpoints.
//!
//! Outputs (under `results/`):
//! - `fig4a_input_XX.pgm` / `fig4b_recon_XX.pgm` — input & reconstruction
//!   images (E1), plus an ASCII montage on stdout;
//! - `fig4c_loss.csv` — L_C and L_R per iteration (E2);
//! - `fig4d_accuracy.csv` — both accuracy metrics per iteration (E3);
//! - `fig4ef_amplitudes.csv` — compression/reconstruction amplitudes of
//!   sample 25 per iteration (E4);
//! - `fig4g_theta.csv` — θ trajectories and gradient norms (E5).

use qn_bench::{results_dir, write_csv, Table};
use qn_core::config::NetworkConfig;
use qn_core::encoding;
use qn_core::spectral;
use qn_core::trainer::Trainer;
use qn_image::{ascii, datasets, pgm};

fn main() {
    let iterations = 300;
    let data = datasets::paper_binary_16(25);
    let cfg = NetworkConfig::paper_default().with_iterations(iterations);
    println!(
        "Fig. 4 reproduction: M={} binary 4x4 images, N={}, d={}, lC={}, lR={}, {} iterations",
        data.len(),
        cfg.dim,
        cfg.compressed_dim,
        cfg.layers_c,
        cfg.layers_r,
        cfg.iterations
    );
    let inputs: Vec<Vec<f64>> = encoding::encode_images(&data, cfg.dim)
        .expect("dataset encodes")
        .into_iter()
        .map(|e| e.amplitudes)
        .collect();
    let bound = spectral::compression_loss_lower_bound(&inputs, cfg.dim, cfg.compressed_dim)
        .expect("bound computable");
    println!(
        "dataset: effective rank {} | rank-4 energy {:.4} | PCA loss bound (sum) {:.3e}",
        datasets::effective_rank(&data, 1e-10),
        datasets::rank_energy(&data, 4),
        bound
    );

    let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
    let report = trainer.train().expect("training runs");
    let h = &report.history;
    let dir = results_dir();

    // E2: loss curves.
    write_csv(
        &dir.join("fig4c_loss.csv"),
        &["iteration", "lc_sum", "lc_mean", "lr_sum", "lr_mean"],
        &(0..h.compression_loss.len())
            .map(|i| {
                vec![
                    i as f64,
                    h.compression_loss[i].sum,
                    h.compression_loss[i].mean,
                    h.reconstruction_loss[i].sum,
                    h.reconstruction_loss[i].mean,
                ]
            })
            .collect::<Vec<_>>(),
    );

    // E3: accuracy curves.
    write_csv(
        &dir.join("fig4d_accuracy.csv"),
        &["iteration", "accuracy_snap_pct", "accuracy_binary_pct"],
        &(0..h.accuracy.len())
            .map(|i| vec![i as f64, h.accuracy[i], h.accuracy_binary[i]])
            .collect::<Vec<_>>(),
    );

    // E4: amplitude traces for the tracked sample (paper's sample 25).
    let n = trainer.config().dim;
    let mut header: Vec<String> = vec!["iteration".to_string()];
    header.extend((0..n).map(|j| format!("compressed_a{j}")));
    header.extend((0..n).map(|j| format!("reconstructed_b{j}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_csv(
        &dir.join("fig4ef_amplitudes.csv"),
        &header_refs,
        &(0..h.compressed_trace.len())
            .map(|i| {
                let mut row = vec![i as f64];
                row.extend(&h.compressed_trace[i]);
                row.extend(&h.reconstructed_trace[i]);
                row
            })
            .collect::<Vec<_>>(),
    );

    // E5: θ trajectories (U_C) + gradient norms.
    let p = h.theta_c_trace[0].len();
    let mut theta_header: Vec<String> = vec!["iteration".to_string(), "grad_norm_c".to_string()];
    theta_header.extend((0..p).map(|j| format!("theta_{j}")));
    let theta_refs: Vec<&str> = theta_header.iter().map(String::as_str).collect();
    write_csv(
        &dir.join("fig4g_theta.csv"),
        &theta_refs,
        &(0..h.theta_c_trace.len())
            .map(|i| {
                let mut row = vec![i as f64, h.grad_norm_c[i]];
                row.extend(&h.theta_c_trace[i]);
                row
            })
            .collect::<Vec<_>>(),
    );

    // E1: input & reconstruction images.
    let ae = trainer.into_autoencoder();
    println!("\ninput (left) vs reconstruction (right), first 5 samples:");
    for (i, img) in data.iter().enumerate() {
        let recon = ae.roundtrip_image(img).expect("roundtrip");
        pgm::write_pgm(img, &dir.join(format!("fig4a_input_{i:02}.pgm"))).expect("pgm write");
        pgm::write_pgm(&recon, &dir.join(format!("fig4b_recon_{i:02}.pgm"))).expect("pgm write");
        if i < 5 {
            println!(
                "{}",
                ascii::render_row(&[img, &recon.snapped()], "   ->   ")
            );
        }
    }

    // Summary vs the paper's reported numbers.
    let it150 = 149.min(h.accuracy.len() - 1);
    let mut t = Table::new(&["quantity", "paper", "this run"]);
    t.row(&[
        "min L_C (mean)".into(),
        "0.017".into(),
        format!(
            "{:.4}",
            h.compression_loss
                .iter()
                .map(|l| l.mean)
                .fold(f64::MAX, f64::min)
        ),
    ]);
    t.row(&[
        "min L_R (mean)".into(),
        "0.023".into(),
        format!(
            "{:.4}",
            h.reconstruction_loss
                .iter()
                .map(|l| l.mean)
                .fold(f64::MAX, f64::min)
        ),
    ]);
    t.row(&[
        "max accuracy (Eq.10+snap)".into(),
        "97.75%".into(),
        format!("{:.2}%", report.max_accuracy),
    ]);
    t.row(&[
        "accuracy @ iter 150".into(),
        "97.75%".into(),
        format!(
            "{:.2}% (binary {:.2}%)",
            h.accuracy[it150], h.accuracy_binary[it150]
        ),
    ]);
    t.row(&[
        "max accuracy (binary 0.5)".into(),
        "(not reported)".into(),
        format!("{:.2}%", report.max_accuracy_binary),
    ]);
    t.row(&[
        "train time".into(),
        "575.67s (MATLAB)".into(),
        format!("{:.2}s", report.train_seconds),
    ]);
    println!("{}", t.render());
    println!("CSV series written to {}", dir.display());
}
