//! Serving-throughput recorder: drives real TCP clients against
//! in-process `qn-serve` instances and measures requests/s and tiles/s
//! at 1/4/16 concurrent clients, comparing per-request scalar dispatch
//! (batching off) against cross-request panel batching — the number
//! the ROADMAP's serving claims point at. Results land in
//! `BENCH_serve.json` at the workspace root.
//!
//! Every configuration first asserts that the remote container is
//! byte-identical to the offline encode — speed only counts after
//! correctness.
//!
//! Usage: `cargo run --release -p qn-bench --bin bench_serve
//! [requests-per-client]` (default 24; image 64×64 → 256 tiles per
//! request).

use qn_backend::BackendKind;
use qn_bench::results_dir;
use qn_codec::model::encode_model;
use qn_codec::{Codec, CodecOptions};
use qn_image::datasets;
use qn_serve::client::model_encode_request;
use qn_serve::{spawn, Client, ServerConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const IMAGE_SIZE: usize = 64;

struct Mode {
    name: &'static str,
    backend: BackendKind,
    batch_deadline: Duration,
}

fn main() {
    let per_client: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("requests-per-client must be a number"))
        .unwrap_or(24);

    let img = datasets::grayscale_blobs(1, IMAGE_SIZE, IMAGE_SIZE, 42).remove(0);
    let opts = CodecOptions {
        inline_model: false,
        ..CodecOptions::default()
    };
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).expect("spectral model");
    let model_bytes = encode_model(codec.model());
    let offline = codec.encode_image(&img, &opts).expect("offline encode");
    let tiles = IMAGE_SIZE.div_ceil(opts.tile_size) * IMAGE_SIZE.div_ceil(opts.tile_size);

    let modes = [
        Mode {
            name: "scalar-per-request",
            backend: BackendKind::Scalar,
            batch_deadline: Duration::ZERO,
        },
        Mode {
            name: "panel-batched",
            backend: BackendKind::Panel,
            batch_deadline: Duration::from_millis(2),
        },
    ];

    println!(
        "serve throughput, {IMAGE_SIZE}x{IMAGE_SIZE} image, {tiles} tiles/request, \
         {per_client} requests/client"
    );
    println!(
        "{:<20} {:>8} {:>12} {:>14} {:>12} {:>14}",
        "mode", "clients", "enc req/s", "enc tiles/s", "dec req/s", "dec tiles/s"
    );

    let mut entries = String::new();
    for mode in &modes {
        for clients in [1usize, 4, 16] {
            let server = spawn(ServerConfig {
                addr: "127.0.0.1:0".into(),
                backend: mode.backend,
                batch_deadline: mode.batch_deadline,
                ..ServerConfig::default()
            })
            .expect("spawn server");
            let addr = server.addr();

            // Pre-warm the zoo and pin correctness before timing.
            {
                let mut warm = Client::connect(addr).expect("connect");
                let id = warm.load_model(&model_bytes).expect("load model");
                assert_eq!(id, codec.model_id());
                let remote = warm
                    .encode(&model_encode_request(&img, &opts, id))
                    .expect("warm encode");
                assert_eq!(remote, offline, "{}: remote bytes diverged", mode.name);
            }

            let run = |decode: bool| -> f64 {
                let start = Instant::now();
                std::thread::scope(|scope| {
                    for _ in 0..clients {
                        scope.spawn(|| {
                            let mut client = Client::connect(addr).expect("connect");
                            for _ in 0..per_client {
                                if decode {
                                    client.decode(&offline).expect("decode");
                                } else {
                                    client
                                        .encode(&model_encode_request(
                                            &img,
                                            &opts,
                                            codec.model_id(),
                                        ))
                                        .expect("encode");
                                }
                            }
                        });
                    }
                });
                start.elapsed().as_secs_f64()
            };

            let requests = (clients * per_client) as f64;
            let enc_s = run(false);
            let dec_s = run(true);
            let (enc_rps, dec_rps) = (requests / enc_s, requests / dec_s);
            let (enc_tps, dec_tps) = (enc_rps * tiles as f64, dec_rps * tiles as f64);
            println!(
                "{:<20} {:>8} {:>12.1} {:>14.0} {:>12.1} {:>14.0}",
                mode.name, clients, enc_rps, enc_tps, dec_rps, dec_tps
            );
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            write!(
                entries,
                "    {{\"mode\": \"{}\", \"backend\": \"{}\", \"batched\": {}, \
                 \"clients\": {clients}, \
                 \"encode_requests_per_sec\": {enc_rps:.1}, \
                 \"encode_tiles_per_sec\": {enc_tps:.0}, \
                 \"decode_requests_per_sec\": {dec_rps:.1}, \
                 \"decode_tiles_per_sec\": {dec_tps:.0}}}",
                mode.name,
                mode.backend.name(),
                !mode.batch_deadline.is_zero(),
            )
            .expect("write entry");
            server.shutdown();
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"image\": \"{IMAGE_SIZE}x{IMAGE_SIZE}\",\n  \
         \"tiles_per_request\": {tiles},\n  \"requests_per_client\": {per_client},\n  \
         \"threads\": {},\n  \"results\": [\n{entries}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    let path = results_dir()
        .parent()
        .expect("results dir has a parent")
        .join("BENCH_serve.json");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
