//! Serving-throughput recorder: drives real TCP clients against
//! in-process `qn-serve` instances and measures requests/s, tiles/s
//! and client-observed p50/p99 request latency at 1/4/16 concurrent
//! clients, comparing per-request scalar dispatch (batching off)
//! against cross-request panel batching — the number the ROADMAP's
//! serving claims point at. Final rows measure the cost of the
//! telemetry layer itself (instrumented server vs `metrics: false`)
//! and of span tracing (untraced requests on a tracing-armed server,
//! fully sampled requests, and a `tracing: false` server).
//! Results land in `BENCH_serve.json` at the workspace root.
//!
//! Every configuration first asserts that the remote container is
//! byte-identical to the offline encode — speed only counts after
//! correctness.
//!
//! Usage: `cargo run --release -p qn-bench --bin bench_serve
//! [requests-per-client]` (default 24; image 64×64 → 256 tiles per
//! request).

use qn_backend::BackendKind;
use qn_bench::results_dir;
use qn_codec::model::encode_model;
use qn_codec::{Codec, CodecOptions};
use qn_image::datasets;
use qn_metrics::Histogram;
use qn_serve::client::model_encode_request;
use qn_serve::{spawn, Client, ServerConfig, TraceContext};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Client-observed latency percentiles, estimated from the same log₂
/// histogram the server uses (`qn_metrics`).
fn percentiles_ms(hist: &Histogram) -> (f64, f64) {
    let to_ms = |ns: u64| ns as f64 / 1e6;
    (
        to_ms(hist.quantile_per_mille(500)),
        to_ms(hist.quantile_per_mille(990)),
    )
}

const IMAGE_SIZE: usize = 64;

struct Mode {
    name: &'static str,
    backend: BackendKind,
    batch_deadline: Duration,
}

fn main() {
    let per_client: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("requests-per-client must be a number"))
        .unwrap_or(24);

    let img = datasets::grayscale_blobs(1, IMAGE_SIZE, IMAGE_SIZE, 42).remove(0);
    let opts = CodecOptions {
        inline_model: false,
        ..CodecOptions::default()
    };
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).expect("spectral model");
    let model_bytes = encode_model(codec.model());
    let offline = codec.encode_image(&img, &opts).expect("offline encode");
    let tiles = IMAGE_SIZE.div_ceil(opts.tile_size) * IMAGE_SIZE.div_ceil(opts.tile_size);

    let modes = [
        Mode {
            name: "scalar-per-request",
            backend: BackendKind::Scalar,
            batch_deadline: Duration::ZERO,
        },
        Mode {
            name: "panel-batched",
            backend: BackendKind::Panel,
            batch_deadline: Duration::from_millis(2),
        },
    ];

    println!(
        "serve throughput, {IMAGE_SIZE}x{IMAGE_SIZE} image, {tiles} tiles/request, \
         {per_client} requests/client"
    );
    println!(
        "{:<20} {:>8} {:>12} {:>14} {:>10} {:>10} {:>12} {:>14}",
        "mode",
        "clients",
        "enc req/s",
        "enc tiles/s",
        "p50 ms",
        "p99 ms",
        "dec req/s",
        "dec tiles/s"
    );

    // One timed sweep against a running server: wall-clock seconds plus
    // a client-side latency histogram across all requests.
    let timed_run = |addr: std::net::SocketAddr,
                     clients: usize,
                     decode: bool,
                     traced: bool|
     -> (f64, Histogram) {
        let hist = Histogram::new();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(|| {
                    let mut client = Client::connect(addr).expect("connect");
                    for round in 0..per_client {
                        let t = Instant::now();
                        if decode {
                            client.decode(&offline).expect("decode");
                        } else if traced {
                            // Ids only need to be non-zero; collisions
                            // across clients are harmless here.
                            let ctx = TraceContext {
                                id: (round + 1) as u64,
                                sampled: true,
                            };
                            client
                                .encode_traced(
                                    &model_encode_request(&img, &opts, codec.model_id()),
                                    ctx,
                                )
                                .expect("traced encode");
                        } else {
                            client
                                .encode(&model_encode_request(&img, &opts, codec.model_id()))
                                .expect("encode");
                        }
                        hist.observe_duration(t.elapsed());
                    }
                });
            }
        });
        (start.elapsed().as_secs_f64(), hist)
    };
    let warm = |addr: std::net::SocketAddr, name: &str| {
        let mut warm = Client::connect(addr).expect("connect");
        let id = warm.load_model(&model_bytes).expect("load model");
        assert_eq!(id, codec.model_id());
        let remote = warm
            .encode(&model_encode_request(&img, &opts, id))
            .expect("warm encode");
        assert_eq!(remote, offline, "{name}: remote bytes diverged");
    };

    let mut entries = String::new();
    for mode in &modes {
        for clients in [1usize, 4, 16] {
            let server = spawn(ServerConfig {
                addr: "127.0.0.1:0".into(),
                backend: mode.backend,
                batch_deadline: mode.batch_deadline,
                ..ServerConfig::default()
            })
            .expect("spawn server");
            let addr = server.addr();

            // Pre-warm the zoo and pin correctness before timing.
            warm(addr, mode.name);

            let requests = (clients * per_client) as f64;
            let (enc_s, enc_hist) = timed_run(addr, clients, false, false);
            let (dec_s, _) = timed_run(addr, clients, true, false);
            let (enc_rps, dec_rps) = (requests / enc_s, requests / dec_s);
            let (enc_tps, dec_tps) = (enc_rps * tiles as f64, dec_rps * tiles as f64);
            let (p50_ms, p99_ms) = percentiles_ms(&enc_hist);
            println!(
                "{:<20} {:>8} {:>12.1} {:>14.0} {:>10.2} {:>10.2} {:>12.1} {:>14.0}",
                mode.name, clients, enc_rps, enc_tps, p50_ms, p99_ms, dec_rps, dec_tps
            );
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            write!(
                entries,
                "    {{\"mode\": \"{}\", \"backend\": \"{}\", \"batched\": {}, \
                 \"clients\": {clients}, \
                 \"encode_requests_per_sec\": {enc_rps:.1}, \
                 \"encode_tiles_per_sec\": {enc_tps:.0}, \
                 \"encode_latency_p50_ms\": {p50_ms:.3}, \
                 \"encode_latency_p99_ms\": {p99_ms:.3}, \
                 \"decode_requests_per_sec\": {dec_rps:.1}, \
                 \"decode_tiles_per_sec\": {dec_tps:.0}}}",
                mode.name,
                mode.backend.name(),
                !mode.batch_deadline.is_zero(),
            )
            .expect("write entry");
            server.shutdown();
        }
    }

    // The cost of telemetry itself: the default panel configuration at
    // 4 clients, with the metrics layer on vs off. Recorded, not
    // asserted — single-machine noise swamps a sub-percent delta.
    let measure_metrics = |metrics: bool| -> f64 {
        let server = spawn(ServerConfig {
            addr: "127.0.0.1:0".into(),
            metrics,
            ..ServerConfig::default()
        })
        .expect("spawn server");
        warm(server.addr(), "metrics-overhead");
        let (secs, _) = timed_run(server.addr(), 4, false, false);
        let rps = (4 * per_client) as f64 / secs;
        server.shutdown();
        rps
    };
    let rps_instrumented = measure_metrics(true);
    let rps_bare = measure_metrics(false);
    let overhead_pct = (rps_bare - rps_instrumented) / rps_bare * 100.0;
    println!(
        "metrics overhead (4 clients, encode): instrumented {rps_instrumented:.1} req/s, \
         no-metrics {rps_bare:.1} req/s ({overhead_pct:+.2}%)"
    );

    // The cost of span tracing: untraced requests against a
    // tracing-armed server pay one branch per span site; sampled
    // requests pay full span recording; a `tracing: false` server is
    // the floor. Recorded, not asserted, like the metrics row.
    let measure_tracing = |tracing: bool, sampled: bool| -> f64 {
        let server = spawn(ServerConfig {
            addr: "127.0.0.1:0".into(),
            tracing,
            ..ServerConfig::default()
        })
        .expect("spawn server");
        warm(server.addr(), "tracing-overhead");
        let (secs, _) = timed_run(server.addr(), 4, false, sampled);
        let rps = (4 * per_client) as f64 / secs;
        server.shutdown();
        rps
    };
    let rps_no_tracing = measure_tracing(false, false);
    let rps_untraced = measure_tracing(true, false);
    let rps_sampled = measure_tracing(true, true);
    let untraced_pct = (rps_no_tracing - rps_untraced) / rps_no_tracing * 100.0;
    let sampled_pct = (rps_no_tracing - rps_sampled) / rps_no_tracing * 100.0;
    println!(
        "tracing overhead (4 clients, encode): no-tracing {rps_no_tracing:.1} req/s, \
         untraced {rps_untraced:.1} req/s ({untraced_pct:+.2}%), \
         sampled {rps_sampled:.1} req/s ({sampled_pct:+.2}%)"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"image\": \"{IMAGE_SIZE}x{IMAGE_SIZE}\",\n  \
         \"tiles_per_request\": {tiles},\n  \"requests_per_client\": {per_client},\n  \
         \"threads\": {},\n  \"metrics_overhead\": {{\"clients\": 4, \
         \"encode_rps_instrumented\": {rps_instrumented:.1}, \
         \"encode_rps_no_metrics\": {rps_bare:.1}, \
         \"overhead_pct\": {overhead_pct:.2}}},\n  \
         \"tracing_overhead\": {{\"clients\": 4, \
         \"encode_rps_no_tracing\": {rps_no_tracing:.1}, \
         \"encode_rps_untraced\": {rps_untraced:.1}, \
         \"encode_rps_sampled\": {rps_sampled:.1}, \
         \"untraced_overhead_pct\": {untraced_pct:.2}, \
         \"sampled_overhead_pct\": {sampled_pct:.2}}},\n  \"results\": [\n{entries}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    let path = results_dir()
        .parent()
        .expect("results dir has a parent")
        .join("BENCH_serve.json");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
