//! Reproduce **Fig. 5c** and **Table I** (experiments E6–E7): the
//! QN-vs-CSC comparison at the same 16×16 scale on the same dataset.
//!
//! Paper: "For the same data set, the training time (CPU runs) of the
//! CSC-based algorithm is longer, and the training loss of the QN-based
//! algorithm is much lower" — Table I: QN 97.75 % / 575.67 s vs CSC
//! 93.63 % / 763.83 s, both 16×16.
//!
//! Absolute seconds are not comparable (MATLAB vs optimised Rust); the
//! *shape* under test is: QN accuracy > CSC accuracy, QN final loss <
//! CSC final loss, and QN cheaper per equal iteration budget. A PCA row
//! (ref [11]'s classically-simulable content) is added as an extension.
//!
//! Outputs: `results/fig5c_loss.csv`, `results/table1.csv`, stdout table.

use qn_bench::{results_dir, write_csv, Table};
use qn_classical::csc::{CscConfig, CscPipeline};
use qn_classical::pca::Pca;
use qn_core::config::NetworkConfig;
use qn_core::trainer::Trainer;
use qn_image::{datasets, metrics, GrayImage};
use std::time::Instant;

fn main() {
    let data = datasets::paper_binary_16(25);
    let iterations = 150;

    // --- Quantum network (same budget as the paper). ---
    let qn_cfg = NetworkConfig::paper_default().with_iterations(iterations);
    let mut qn = Trainer::new(qn_cfg, &data).expect("valid configuration");
    let qn_report = qn.train().expect("training runs");

    // --- CSC baseline: 16×16 dictionary, SVD-based learning. ---
    let csc_cfg = CscConfig {
        iterations,
        ..CscConfig::paper_default()
    };
    let mut csc = CscPipeline::new(csc_cfg, &data);
    let csc_report = csc.train();

    // --- PCA (qPCA's classical content), single-shot fit. ---
    let samples: Vec<Vec<f64>> = data.iter().map(|i| i.to_vector()).collect();
    let pca_start = Instant::now();
    let pca = Pca::fit(&samples, 4).expect("pca fits");
    let pca_seconds = pca_start.elapsed().as_secs_f64();
    let pca_recons: Vec<GrayImage> = samples
        .iter()
        .zip(&data)
        .map(|(x, img)| {
            let y = pca.roundtrip(x);
            GrayImage::from_pixels(img.width(), img.height(), y)
                .expect("dimensions preserved")
                .snapped()
        })
        .collect();
    let pca_accuracy = metrics::mean_pixel_accuracy(&pca_recons, &data, 0.01);
    let pca_binarised: Vec<GrayImage> = pca_recons.iter().map(|r| r.thresholded(0.5)).collect();
    let pca_accuracy_binary = metrics::mean_pixel_accuracy(&pca_binarised, &data, 0.01);

    // --- Fig 5c: compression-loss curves on a common iteration axis. ---
    let h = &qn_report.history;
    let rows: Vec<Vec<f64>> = (0..iterations)
        .map(|i| {
            vec![
                i as f64,
                h.compression_loss[i].sum,
                h.compression_loss[i].mean,
                csc_report.loss[i],
                csc_report.loss_mean[i],
            ]
        })
        .collect();
    let dir = results_dir();
    write_csv(
        &dir.join("fig5c_loss.csv"),
        &[
            "iteration",
            "qn_loss_sum",
            "qn_loss_mean",
            "csc_loss_sum",
            "csc_loss_mean",
        ],
        &rows,
    );

    // --- Table I. ---
    write_csv(
        &dir.join("table1.csv"),
        &["method", "accuracy_pct", "cpu_seconds", "matrix_size"],
        &[
            vec![
                0.0,
                qn_report.max_accuracy_binary,
                qn_report.train_seconds,
                16.0,
            ],
            vec![
                1.0,
                csc_report.max_accuracy_binary,
                csc_report.train_seconds,
                16.0,
            ],
            vec![2.0, pca_accuracy_binary, pca_seconds, 16.0],
        ],
    );

    // Binary images in, binary images out: the §IV-B binary-threshold
    // accuracy is the comparable metric; the strict Eq. 10 snap accuracy
    // is reported alongside.
    let mut t = Table::new(&[
        "Method",
        "Accuracy (binary)",
        "Accuracy (snap)",
        "CPU Runs",
        "Matrix Size",
    ]);
    t.row(&[
        "QN-based".into(),
        format!("{:.2}% (paper: 97.75%)", qn_report.max_accuracy_binary),
        format!("{:.2}%", qn_report.max_accuracy),
        format!("{:.3}s (paper: 575.67s)", qn_report.train_seconds),
        "16x16".into(),
    ]);
    t.row(&[
        "CSC-based".into(),
        format!("{:.2}% (paper: 93.63%)", csc_report.max_accuracy_binary),
        format!("{:.2}%", csc_report.max_accuracy),
        format!("{:.3}s (paper: 763.83s)", csc_report.train_seconds),
        csc_report.matrix_size.clone(),
    ]);
    t.row(&[
        "PCA (ext.)".into(),
        format!("{pca_accuracy_binary:.2}%"),
        format!("{pca_accuracy:.2}%"),
        format!("{pca_seconds:.4}s"),
        "16x16".into(),
    ]);
    println!("{}", t.render());

    let qn_final = h.compression_loss[iterations - 1].sum;
    let csc_final = csc_report.loss[iterations - 1];
    println!(
        "final training loss (sum): QN {qn_final:.4} vs CSC {csc_final:.4}  → {}",
        if qn_final < csc_final {
            "QN lower, matching Fig. 5c"
        } else {
            "SHAPE MISMATCH: CSC lower"
        }
    );
    println!(
        "wall-clock: QN {:.3}s vs CSC {:.3}s → {}",
        qn_report.train_seconds,
        csc_report.train_seconds,
        if qn_report.train_seconds < csc_report.train_seconds {
            "QN cheaper, matching Table I"
        } else {
            "CSC cheaper here (absolute times are substrate-dependent)"
        }
    );

    // Supplementary: the same comparison on the *hard* dataset (off-
    // subspace energy), where neither method saturates — shows the
    // ordering holds away from the lossless regime too.
    let hard = datasets::paper_binary_16_hard(25);
    let mut qn_h = Trainer::new(
        NetworkConfig::paper_default().with_iterations(iterations),
        &hard,
    )
    .expect("valid configuration");
    let qn_h_report = qn_h.train().expect("training runs");
    let mut csc_h = CscPipeline::new(
        CscConfig {
            iterations,
            ..CscConfig::paper_default()
        },
        &hard,
    );
    let csc_h_report = csc_h.train();
    let mut th = Table::new(&[
        "Method (hard set)",
        "Accuracy (binary)",
        "Accuracy (snap)",
        "CPU Runs",
    ]);
    th.row(&[
        "QN-based".into(),
        format!("{:.2}%", qn_h_report.max_accuracy_binary),
        format!("{:.2}%", qn_h_report.max_accuracy),
        format!("{:.3}s", qn_h_report.train_seconds),
    ]);
    th.row(&[
        "CSC-based".into(),
        format!("{:.2}%", csc_h_report.max_accuracy_binary),
        format!("{:.2}%", csc_h_report.max_accuracy),
        format!("{:.3}s", csc_h_report.train_seconds),
    ]);
    println!("\n{}", th.render());
    write_csv(
        &dir.join("table1_hard.csv"),
        &[
            "method",
            "accuracy_binary_pct",
            "accuracy_snap_pct",
            "cpu_seconds",
        ],
        &[
            vec![
                0.0,
                qn_h_report.max_accuracy_binary,
                qn_h_report.max_accuracy,
                qn_h_report.train_seconds,
            ],
            vec![
                1.0,
                csc_h_report.max_accuracy_binary,
                csc_h_report.max_accuracy,
                csc_h_report.train_seconds,
            ],
        ],
    );
    println!("CSV series written to {}", dir.display());
}
