//! Experiment **A2**: compression-target ablation.
//!
//! The paper's Eq. 5 needs per-sample targets `b_i` but only shows a
//! single uniform example (`(b)² = [0,…,0,.25,.25,.25,.25]`). A unitary
//! cannot map 25 distinct states to one shared target, so the uniform
//! strategy must plateau; the trash-penalty strategy (zero amplitude
//! outside the kept subspace, free inside) is the one that admits
//! lossless compression. This binary measures exactly that difference.
//!
//! Output: `results/ablation_targets.csv` + stdout table.

use qn_bench::{results_dir, write_csv, Table};
use qn_core::config::{CompressionTargetKind, NetworkConfig};
use qn_core::trainer::Trainer;
use qn_image::datasets;

fn main() {
    let data = datasets::paper_binary_16(25);
    let targets: Vec<(&str, CompressionTargetKind)> = vec![
        ("trash penalty", CompressionTargetKind::TrashPenalty),
        ("uniform (paper ex.)", CompressionTargetKind::Uniform),
    ];

    let mut t = Table::new(&["target", "L_C final", "L_R final", "acc_snap", "acc_binary"]);
    let mut rows = Vec::new();
    for (idx, (name, target)) in targets.iter().enumerate() {
        let cfg = NetworkConfig::paper_default().with_target(target.clone());
        let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
        let report = trainer.train().expect("training runs");
        t.row(&[
            name.to_string(),
            format!("{:.4}", report.final_compression_loss),
            format!("{:.4}", report.final_reconstruction_loss),
            format!("{:.2}%", report.max_accuracy),
            format!("{:.2}%", report.max_accuracy_binary),
        ]);
        rows.push(vec![
            idx as f64,
            report.final_compression_loss,
            report.final_reconstruction_loss,
            report.max_accuracy,
            report.max_accuracy_binary,
        ]);
    }
    println!("{}", t.render());
    println!(
        "The uniform target cannot be satisfied for 25 distinct inputs \
         (a unitary is injective), so its L_C plateaus and reconstruction \
         degrades — this is why the trash penalty is the default."
    );
    write_csv(
        &results_dir().join("ablation_targets.csv"),
        &[
            "target",
            "lc_final_mean",
            "lr_final_mean",
            "accuracy_snap",
            "accuracy_binary",
        ],
        &rows,
    );
}
