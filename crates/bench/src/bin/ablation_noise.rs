//! Experiment **A5/A6 (robustness)**: shot-noise and optical-loss
//! failure injection.
//!
//! The paper trains on exact simulated amplitudes and assumes an ideal
//! lossless interferometer. This binary measures how the pipeline
//! degrades when (a) amplitudes are estimated from finite measurement
//! shots during training, and (b) the trained network is deployed on a
//! lossy mesh (per-gate insertion loss).
//!
//! Outputs: `results/ablation_shots.csv`, `results/ablation_loss_db.csv`.

use qn_bench::{results_dir, write_csv, Table};
use qn_core::config::NetworkConfig;
use qn_core::encoding;
use qn_core::trainer::Trainer;
use qn_image::{datasets, metrics, GrayImage};
use qn_photonic::lossy::{db_to_amplitude_transmission, propagate_lossy};

fn main() {
    let data = datasets::paper_binary_16(25);
    let dir = results_dir();

    // --- (a) Shot-noise during training. ---
    println!("shot-noise sweep (0 = exact simulation):");
    let mut t = Table::new(&["shots", "L_C final", "acc_snap", "acc_binary"]);
    let mut rows = Vec::new();
    for shots in [0usize, 256, 1024, 4096, 16384] {
        let cfg = NetworkConfig::paper_default().with_shots(shots);
        let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
        let report = trainer.train().expect("training runs");
        t.row(&[
            shots.to_string(),
            format!("{:.2e}", report.final_compression_loss),
            format!("{:.2}%", report.max_accuracy),
            format!("{:.2}%", report.max_accuracy_binary),
        ]);
        rows.push(vec![
            shots as f64,
            report.final_compression_loss,
            report.max_accuracy,
            report.max_accuracy_binary,
        ]);
    }
    println!("{}", t.render());
    write_csv(
        &dir.join("ablation_shots.csv"),
        &["shots", "lc_final_mean", "accuracy_snap", "accuracy_binary"],
        &rows,
    );

    // --- (b) Deploying the exactly-trained network on a lossy mesh. ---
    println!("insertion-loss sweep (trained losslessly, deployed lossy):");
    let mut trainer =
        Trainer::new(NetworkConfig::paper_default(), &data).expect("valid configuration");
    trainer.train().expect("training runs");
    let encoded = encoding::encode_images(&data, 16).expect("dataset encodes");
    let comp_seq = trainer.compression().mesh().to_sequence();
    let recon_seq = trainer.reconstruction().mesh().to_sequence();
    let projector = trainer.compression().projector().clone();

    let mut t = Table::new(&[
        "loss dB/gate",
        "amp transmission",
        "acc_binary",
        "mean survival",
    ]);
    let mut rows = Vec::new();
    for db in [0.0, 0.001, 0.005, 0.01, 0.05, 0.1] {
        let eta = db_to_amplitude_transmission(db);
        let mut survived_total = 0.0;
        let recons: Vec<GrayImage> = encoded
            .iter()
            .zip(&data)
            .map(|(e, img)| {
                let mut amps = e.amplitudes.clone();
                let s1 = propagate_lossy(&comp_seq, &mut amps, eta);
                projector.project_real(&mut amps).expect("dims match");
                let s2 = propagate_lossy(&recon_seq, &mut amps, eta);
                survived_total += s1 * s2;
                encoding::decode_image(&amps, e.norm, img.width(), img.height())
                    .expect("dims preserved")
                    .thresholded(0.5)
            })
            .collect();
        let acc = metrics::mean_pixel_accuracy(&recons, &data, 0.01);
        t.row(&[
            format!("{db}"),
            format!("{eta:.5}"),
            format!("{acc:.2}%"),
            format!("{:.4}", survived_total / data.len() as f64),
        ]);
        rows.push(vec![db, eta, acc, survived_total / data.len() as f64]);
    }
    println!("{}", t.render());
    write_csv(
        &dir.join("ablation_loss_db.csv"),
        &[
            "db_per_gate",
            "amplitude_transmission",
            "accuracy_binary",
            "mean_survival",
        ],
        &rows,
    );
}
