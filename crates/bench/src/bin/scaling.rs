//! Experiment **A4**: scaling sweeps beyond the paper's single data
//! point (the paper only evaluates N = 16; its introduction claims the
//! approach "can process large-scale image data", which this binary
//! actually measures).
//!
//! Sweeps:
//! - image size: 4×4 (N=16) → 8×8 (N=64) → 16×16 (N=256), rank-matched
//!   datasets, fixed d/N ratio;
//! - compressed dimension d at N = 16;
//! - network depth l_C at N = 16.
//!
//! Outputs: `results/scaling_size.csv`, `results/scaling_d.csv`,
//! `results/scaling_layers.csv` and a stdout summary.

use qn_bench::{results_dir, write_csv, Table};
use qn_core::config::NetworkConfig;
use qn_core::trainer::Trainer;
use qn_image::datasets;

fn main() {
    let dir = results_dir();

    // --- Sweep 1: image size (fixed d/N = 1/4, rank-d datasets). ---
    println!("size sweep (iterations = 150, rank-matched data):");
    let mut t = Table::new(&[
        "size",
        "N",
        "d",
        "params",
        "L_C(final)",
        "acc_binary",
        "seconds",
    ]);
    let mut rows = Vec::new();
    for &(side, layers) in &[(4usize, 12usize), (8, 16), (16, 24)] {
        let n = side * side;
        let d = n / 4;
        let data = datasets::low_rank_binary(25, side, side, d, 17);
        let cfg = NetworkConfig::paper_default()
            .with_dims(n, d)
            .with_layers(layers, layers + 2);
        let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
        let report = trainer.train().expect("training runs");
        t.row(&[
            format!("{side}x{side}"),
            n.to_string(),
            d.to_string(),
            (layers * (n - 1)).to_string(),
            format!("{:.2e}", report.final_compression_loss),
            format!("{:.2}%", report.max_accuracy_binary),
            format!("{:.2}", report.train_seconds),
        ]);
        rows.push(vec![
            n as f64,
            d as f64,
            (layers * (n - 1)) as f64,
            report.final_compression_loss,
            report.max_accuracy_binary,
            report.train_seconds,
        ]);
    }
    println!("{}", t.render());
    write_csv(
        &dir.join("scaling_size.csv"),
        &[
            "n",
            "d",
            "params",
            "lc_final_mean",
            "accuracy_binary",
            "seconds",
        ],
        &rows,
    );

    // --- Sweep 2: compressed dimension d at N = 16 on the hard set. ---
    println!("d sweep (hard dataset, N = 16):");
    let hard = datasets::paper_binary_16_hard(25);
    let mut t = Table::new(&["d", "L_C(final)", "acc_snap", "acc_binary"]);
    let mut rows = Vec::new();
    for d in [2usize, 4, 6, 8, 12] {
        let cfg = NetworkConfig::paper_default().with_dims(16, d);
        let mut trainer = Trainer::new(cfg, &hard).expect("valid configuration");
        let report = trainer.train().expect("training runs");
        t.row(&[
            d.to_string(),
            format!("{:.4}", report.final_compression_loss),
            format!("{:.2}%", report.max_accuracy),
            format!("{:.2}%", report.max_accuracy_binary),
        ]);
        rows.push(vec![
            d as f64,
            report.final_compression_loss,
            report.max_accuracy,
            report.max_accuracy_binary,
        ]);
    }
    println!("{}", t.render());
    write_csv(
        &dir.join("scaling_d.csv"),
        &["d", "lc_final_mean", "accuracy_snap", "accuracy_binary"],
        &rows,
    );

    // --- Sweep 3: depth l_C at N = 16 (canonical set). ---
    println!("layer sweep (canonical dataset, N = 16, d = 4):");
    let data = datasets::paper_binary_16(25);
    let mut t = Table::new(&["l_C", "params", "L_C(final)", "acc_binary"]);
    let mut rows = Vec::new();
    for lc in [2usize, 4, 8, 12, 16] {
        let cfg = NetworkConfig::paper_default().with_layers(lc, lc + 2);
        let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
        let report = trainer.train().expect("training runs");
        t.row(&[
            lc.to_string(),
            (lc * 15).to_string(),
            format!("{:.2e}", report.final_compression_loss),
            format!("{:.2}%", report.max_accuracy_binary),
        ]);
        rows.push(vec![
            lc as f64,
            (lc * 15) as f64,
            report.final_compression_loss,
            report.max_accuracy_binary,
        ]);
    }
    println!("{}", t.render());
    write_csv(
        &dir.join("scaling_layers.csv"),
        &["layers_c", "params", "lc_final_mean", "accuracy_binary"],
        &rows,
    );
    println!("CSV series written to {}", dir.display());
}
