//! Experiment **A7**: optimiser ablation — including the paper-exact
//! training recipe.
//!
//! The paper trains with plain gradient descent at η = 0.01 (Eq. 9) on
//! gradients divided by M×N (Algorithm 1). On this landscape that recipe
//! moves very slowly; this binary quantifies the gap against plain GD at
//! larger rates, momentum, and Adam (the workspace default), justifying
//! the documented deviation.
//!
//! Output: `results/ablation_optimizer.csv` + stdout table.

use qn_bench::{results_dir, write_csv, Table};
use qn_core::config::{NetworkConfig, OptimizerKind};
use qn_core::trainer::Trainer;
use qn_image::datasets;

fn main() {
    let data = datasets::paper_binary_16(25);
    let runs: Vec<(&str, NetworkConfig)> = vec![
        (
            "paper-exact (GD η=.01, /MN, FD Δ=1e-8)",
            NetworkConfig::paper_exact(),
        ),
        (
            "GD η=0.1",
            NetworkConfig::paper_default()
                .with_optimizer(OptimizerKind::Gd)
                .with_learning_rate(0.1),
        ),
        (
            "GD η=0.5",
            NetworkConfig::paper_default()
                .with_optimizer(OptimizerKind::Gd)
                .with_learning_rate(0.5),
        ),
        (
            "momentum η=0.05 β=0.9",
            NetworkConfig::paper_default()
                .with_optimizer(OptimizerKind::Momentum { beta: 0.9 })
                .with_learning_rate(0.05),
        ),
        ("adam η=0.05 (default)", NetworkConfig::paper_default()),
    ];

    let mut t = Table::new(&[
        "optimizer",
        "L_C final",
        "L_R final",
        "acc_binary",
        "seconds",
    ]);
    let mut rows = Vec::new();
    for (idx, (name, cfg)) in runs.into_iter().enumerate() {
        let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
        let report = trainer.train().expect("training runs");
        t.row(&[
            name.to_string(),
            format!("{:.2e}", report.final_compression_loss),
            format!("{:.2e}", report.final_reconstruction_loss),
            format!("{:.2}%", report.max_accuracy_binary),
            format!("{:.3}", report.train_seconds),
        ]);
        rows.push(vec![
            idx as f64,
            report.final_compression_loss,
            report.final_reconstruction_loss,
            report.max_accuracy_binary,
            report.train_seconds,
        ]);
    }
    println!("{}", t.render());
    write_csv(
        &results_dir().join("ablation_optimizer.csv"),
        &[
            "run",
            "lc_final_mean",
            "lr_final_mean",
            "accuracy_binary",
            "seconds",
        ],
        &rows,
    );
}
