//! Experiment **A1**: gradient-method ablation.
//!
//! The paper computes gradients with a forward difference at Δ = 10⁻⁸
//! (Eq. 8) — a numerically poor choice in f64 (√ε ≈ 1.5·10⁻⁸ is where
//! forward differences lose half the mantissa). This binary measures,
//! per method: agreement with the exact gradient, end-of-training loss,
//! and time per training run.
//!
//! Output: `results/ablation_gradient.csv` + stdout table.

use qn_bench::{results_dir, write_csv, Table};
use qn_core::compression::CompressionNetwork;
use qn_core::config::{CompressionTargetKind, NetworkConfig, SubspaceKind};
use qn_core::encoding;
use qn_core::gradient::{loss_and_gradient, GradientMethod};
use qn_core::trainer::Trainer;
use qn_image::datasets;
use qn_photonic::Mesh;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = datasets::paper_binary_16(25);
    let inputs: Vec<Vec<f64>> = encoding::encode_images(&data, 16)
        .expect("dataset encodes")
        .into_iter()
        .map(|e| e.amplitudes)
        .collect();

    // Gradient accuracy at a random operating point.
    let mut rng = StdRng::seed_from_u64(99);
    let mesh = Mesh::random(16, 12, &mut rng);
    let net = CompressionNetwork::new(
        mesh,
        4,
        SubspaceKind::KeepLast,
        CompressionTargetKind::TrashPenalty,
    )
    .expect("valid network");
    let residual = |i: usize, out: &[f64], buf: &mut [f64]| net.residual(i, out, buf);
    let (_, exact) = loss_and_gradient(net.mesh(), &inputs, &residual, GradientMethod::Analytic);

    let methods: Vec<(&str, GradientMethod)> = vec![
        ("analytic (backprop)", GradientMethod::Analytic),
        (
            "central Δ=1e-6",
            GradientMethod::CentralDifference { delta: 1e-6 },
        ),
        ("forward Δ=1e-8 (paper)", GradientMethod::paper()),
        (
            "forward Δ=1e-4",
            GradientMethod::ForwardDifference { delta: 1e-4 },
        ),
    ];

    let mut t = Table::new(&[
        "method",
        "max |g − g*|",
        "L_C final",
        "acc_binary",
        "train s",
    ]);
    let mut rows = Vec::new();
    for (idx, (name, method)) in methods.iter().enumerate() {
        let (_, g) = loss_and_gradient(net.mesh(), &inputs, &residual, *method);
        let max_err = g
            .iter()
            .zip(&exact)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));

        let cfg = NetworkConfig::paper_default().with_gradient(*method);
        let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
        let report = trainer.train().expect("training runs");

        t.row(&[
            name.to_string(),
            format!("{max_err:.2e}"),
            format!("{:.2e}", report.final_compression_loss),
            format!("{:.2}%", report.max_accuracy_binary),
            format!("{:.3}", report.train_seconds),
        ]);
        rows.push(vec![
            idx as f64,
            max_err,
            report.final_compression_loss,
            report.max_accuracy_binary,
            report.train_seconds,
        ]);
    }
    println!("{}", t.render());
    write_csv(
        &results_dir().join("ablation_gradient.csv"),
        &[
            "method",
            "max_grad_error",
            "lc_final_mean",
            "accuracy_binary",
            "seconds",
        ],
        &rows,
    );
}
