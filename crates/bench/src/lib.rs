//! Shared utilities for the reproduction binaries: CSV writing, result
//! directory resolution, and a plain-text table printer.
//!
//! Every binary in `src/bin/` regenerates one paper artefact (a table or
//! figure series) and writes its data under `results/` at the workspace
//! root — see `DESIGN.md` for the experiment index.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Locate (and create) the workspace-level `results/` directory.
///
/// # Panics
/// Panics when the directory cannot be created.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf();
    let dir = root.join("results");
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Write a CSV file: a header row plus one row per record.
///
/// # Panics
/// Panics on IO failure (repro binaries should fail loudly).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) {
    let mut f = fs::File::create(path).expect("cannot create CSV file");
    writeln!(f, "{}", header.join(",")).expect("CSV write failed");
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.10}")).collect();
        writeln!(f, "{}", cells.join(",")).expect("CSV write failed");
    }
}

/// A minimal fixed-width table printer for stdout summaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "table arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.is_dir());
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("qn_bench_csv");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        write_csv(&p, &["a", "b"], &[vec![1.0, 2.0], vec![3.5, -0.25]]);
        let s = fs::read_to_string(&p).unwrap();
        let mut lines = s.lines();
        assert_eq!(lines.next().unwrap(), "a,b");
        assert!(lines
            .next()
            .unwrap()
            .starts_with("1.0000000000,2.0000000000"));
        fs::remove_file(&p).ok();
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Method", "Accuracy"]);
        t.row(&["QN-based".to_string(), "97.75%".to_string()]);
        t.row(&["CSC-based".to_string(), "93.63%".to_string()]);
        let s = t.render();
        assert!(s.contains("Method"));
        assert!(s.contains("QN-based"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn table_checks_arity() {
        Table::new(&["a"]).row(&["x".to_string(), "y".to_string()]);
    }
}
