//! The quantum sweep runner: one rate–distortion point per (dataset,
//! operating point), measured through the real `.qnc` bitstream.
//!
//! Rate accounting: each dataset gets **one** shared spectral model
//! (fitted on the pooled tiles of every image — see
//! `Codec::spectral_for_images`), containers are encoded *without* the
//! inline model, and the model's serialized size is reported separately
//! as `side_bytes`. `bpp` is therefore the honest per-image bitstream
//! rate (headers, tile occupancy bits, norms and Rice-coded latents
//! included) with the model amortized across the dataset — the same
//! accounting the classical baselines use for their basis/dictionary.
//!
//! Distortion: PSNR is computed from the *aggregate* MSE over every
//! pixel of the dataset (so one lossless image cannot produce an
//! infinite mean), SSIM as the mean of per-image global SSIM.
//! Reconstructions are clamped to `[0, 1]` first, exactly like the
//! `qnc compress --verify` path.

use crate::grid::{Grid, OperatingPoint};
use crate::registry::Dataset;
use qn_backend::BackendKind;
use qn_codec::{model, Codec, CodecOptions, EntropyCoder};
use qn_image::metrics;
use std::time::Instant;

/// Wall-clock throughput of the mesh-bearing halves of a sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Encoded tiles per second across the whole dataset.
    pub encode_tiles_per_s: f64,
    /// Decoded tiles per second across the whole dataset.
    pub decode_tiles_per_s: f64,
}

/// One rate–distortion measurement: a codec at an operating point on a
/// dataset.
#[derive(Debug, Clone)]
pub struct RdPoint {
    /// Which codec produced the point: `quantum`, `svd`, `pca`, `csc`.
    pub codec: String,
    /// Tile edge length (0 for whole-image codecs: SVD, CSC).
    pub tile_size: usize,
    /// Latent dimension / rank / sparsity — the compression knob.
    pub latent_dim: usize,
    /// Quantizer bit depth.
    pub bits: u8,
    /// Entropy coder of the bitstream (quantum points only; classical
    /// baselines carry `None`).
    pub entropy: Option<EntropyCoder>,
    /// Bits per pixel of the per-image payload (side info excluded).
    pub bpp: f64,
    /// Aggregate-MSE PSNR in dB (`+∞` for a lossless sweep point).
    pub psnr_db: f64,
    /// Mean per-image global SSIM.
    pub ssim: f64,
    /// Amortized side information: serialized model / basis /
    /// dictionary bytes shared by the whole dataset.
    pub side_bytes: usize,
    /// Mesh-pass throughput (quantum points only, and only when timing
    /// was requested — excluded from stable reports).
    pub throughput: Option<Throughput>,
}

/// Accumulates aggregate distortion over a dataset.
#[derive(Debug, Default)]
pub(crate) struct DistortionAccum {
    sq_err: f64,
    pixels: usize,
    ssim_sum: f64,
    images: usize,
}

impl DistortionAccum {
    /// Fold in one (original, clamped reconstruction) pair.
    pub(crate) fn add(&mut self, original: &qn_image::GrayImage, recon: &qn_image::GrayImage) {
        self.sq_err += metrics::mse(original, recon) * original.len() as f64;
        self.pixels += original.len();
        self.ssim_sum += metrics::ssim(original, recon);
        self.images += 1;
    }

    /// `(psnr_db, mean ssim)`; PSNR is `+∞` when every pixel matched.
    pub(crate) fn finish(&self) -> (f64, f64) {
        let mse = self.sq_err / self.pixels.max(1) as f64;
        let psnr = if mse == 0.0 {
            f64::INFINITY
        } else {
            -10.0 * mse.log10()
        };
        (psnr, self.ssim_sum / self.images.max(1) as f64)
    }
}

/// Measure the quantum codec at one operating point on one dataset.
///
/// # Errors
/// Codec failures (invalid operating point for the dataset geometry,
/// spectral fit failures) as strings ready for CLI reporting.
pub fn quantum_point(
    dataset: &Dataset,
    point: OperatingPoint,
    entropy: EntropyCoder,
    backend: BackendKind,
    timings: bool,
) -> Result<RdPoint, String> {
    let codec = Codec::spectral_for_images(&dataset.images, point.tile_size, point.latent_dim)
        .map_err(|e| format!("{}: spectral fit: {e}", dataset.name))?;
    quantum_point_with(&codec, dataset, point, entropy, backend, timings)
}

/// [`quantum_point`] against an already-fitted codec — the sweep fits
/// one spectral model per geometry point and reuses it across the
/// entropy axis (the model depends only on tile size and latent
/// dimension, never on the coder).
fn quantum_point_with(
    codec: &Codec,
    dataset: &Dataset,
    point: OperatingPoint,
    entropy: EntropyCoder,
    backend: BackendKind,
    timings: bool,
) -> Result<RdPoint, String> {
    let opts = CodecOptions {
        tile_size: point.tile_size,
        bits: point.bits,
        per_tile_scale: false,
        inline_model: false,
        backend,
        entropy,
    };
    let mut container_bytes = 0usize;
    let mut tiles = 0usize;
    let mut accum = DistortionAccum::default();
    let mut encode_seconds = 0.0f64;
    let mut decode_seconds = 0.0f64;
    for img in &dataset.images {
        let t0 = Instant::now();
        let (bytes, stats) = codec
            .encode_image_with_stats(img, &opts)
            .map_err(|e| format!("{}: encode: {e}", dataset.name))?;
        encode_seconds += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let back = codec
            .decode_bytes_with(&bytes, backend)
            .map_err(|e| format!("{}: decode: {e}", dataset.name))?;
        decode_seconds += t1.elapsed().as_secs_f64();
        container_bytes += bytes.len();
        tiles += stats.tiles;
        accum.add(img, &back.clamped());
    }
    let (psnr_db, ssim) = accum.finish();
    Ok(RdPoint {
        codec: "quantum".into(),
        tile_size: point.tile_size,
        latent_dim: point.latent_dim,
        bits: point.bits,
        entropy: Some(entropy),
        bpp: container_bytes as f64 * 8.0 / dataset.pixels() as f64,
        psnr_db,
        ssim,
        side_bytes: model::encode_model(codec.model()).len(),
        throughput: timings.then(|| Throughput {
            encode_tiles_per_s: tiles as f64 / encode_seconds.max(1e-12),
            decode_tiles_per_s: tiles as f64 / decode_seconds.max(1e-12),
        }),
    })
}

/// Sweep the quantum codec across a whole grid on one dataset: every
/// operating point × every entropy coder on the grid's axis, geometry
/// outer so per-coder rate deltas sit adjacent in the report. The
/// spectral fit — the expensive eigensolve — runs once per geometry
/// point and is shared across the coder axis.
pub fn quantum_sweep(
    dataset: &Dataset,
    grid: &Grid,
    timings: bool,
) -> Result<Vec<RdPoint>, String> {
    let mut out = Vec::with_capacity(grid.points.len() * grid.coders.len());
    for &p in &grid.points {
        let codec = Codec::spectral_for_images(&dataset.images, p.tile_size, p.latent_dim)
            .map_err(|e| format!("{}: spectral fit: {e}", dataset.name))?;
        for &coder in &grid.coders {
            out.push(quantum_point_with(
                &codec,
                dataset,
                p,
                coder,
                grid.backend,
                timings,
            )?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn blobs() -> Dataset {
        registry::builtin("blobs", 0).unwrap()
    }

    #[test]
    fn quantum_points_are_deterministic_and_sane() {
        let ds = blobs();
        let p = OperatingPoint {
            tile_size: 4,
            latent_dim: 8,
            bits: 8,
        };
        let a = quantum_point(&ds, p, EntropyCoder::Rice, BackendKind::Panel, false).unwrap();
        let b = quantum_point(&ds, p, EntropyCoder::Rice, BackendKind::Panel, false).unwrap();
        assert_eq!(a.bpp.to_bits(), b.bpp.to_bits());
        assert_eq!(a.psnr_db.to_bits(), b.psnr_db.to_bits());
        assert_eq!(a.ssim.to_bits(), b.ssim.to_bits());
        assert!(a.bpp > 0.0 && a.bpp < 8.0, "bpp {}", a.bpp);
        assert!(a.psnr_db > 20.0, "psnr {}", a.psnr_db);
        assert!(a.ssim > 0.5 && a.ssim <= 1.0, "ssim {}", a.ssim);
        assert!(a.side_bytes > 0);
        assert!(a.throughput.is_none(), "no timings unless requested");
    }

    #[test]
    fn backends_agree_on_rd_points() {
        // Backends are bit-compatible, so RD numbers cannot depend on
        // the schedule — the quality mirror of the conformance suite.
        let ds = blobs();
        let p = OperatingPoint {
            tile_size: 4,
            latent_dim: 4,
            bits: 6,
        };
        let panel = quantum_point(&ds, p, EntropyCoder::Rice, BackendKind::Panel, false).unwrap();
        let scalar = quantum_point(&ds, p, EntropyCoder::Rice, BackendKind::Scalar, false).unwrap();
        assert_eq!(panel.bpp.to_bits(), scalar.bpp.to_bits());
        assert_eq!(panel.psnr_db.to_bits(), scalar.psnr_db.to_bits());
    }

    #[test]
    fn more_latents_and_bits_do_not_hurt_quality() {
        let ds = blobs();
        let lo = quantum_point(
            &ds,
            OperatingPoint {
                tile_size: 4,
                latent_dim: 2,
                bits: 4,
            },
            EntropyCoder::Rice,
            BackendKind::Panel,
            false,
        )
        .unwrap();
        let hi = quantum_point(
            &ds,
            OperatingPoint {
                tile_size: 4,
                latent_dim: 8,
                bits: 8,
            },
            EntropyCoder::Rice,
            BackendKind::Panel,
            false,
        )
        .unwrap();
        assert!(hi.psnr_db > lo.psnr_db, "{} vs {}", hi.psnr_db, lo.psnr_db);
        assert!(hi.bpp > lo.bpp, "rate must rise with d and bits");
    }

    #[test]
    fn timings_are_present_only_on_request() {
        let ds = registry::builtin("glyphs", 0).unwrap();
        let p = OperatingPoint {
            tile_size: 4,
            latent_dim: 4,
            bits: 8,
        };
        let timed = quantum_point(&ds, p, EntropyCoder::Rice, BackendKind::Panel, true).unwrap();
        let t = timed.throughput.expect("requested timings");
        assert!(t.encode_tiles_per_s > 0.0 && t.decode_tiles_per_s > 0.0);
    }

    #[test]
    fn v2_coders_lower_the_rate_at_identical_quality() {
        // Entropy coding is lossless re the quantized levels: PSNR and
        // SSIM are bit-identical across coders. At the golden operating
        // point rice-pos must strictly cut the rate on blobs (the
        // gated dataset; seed measurement ≈ −18 %), and the adaptive
        // range coder must win on lowrank, whose larger tile panels
        // amortize its stream setup (≈ −13 %). The range coder is not
        // asserted on blobs-sized containers — its 5-byte flush can
        // outweigh the context gains on very small tile panels, which
        // is exactly what the per-coder BENCH_quality axis documents.
        let p = crate::GOLDEN.point;
        for (ds_name, coder) in [
            ("blobs", EntropyCoder::RicePos),
            ("lowrank", EntropyCoder::RicePos),
            ("lowrank", EntropyCoder::Range),
        ] {
            let ds = registry::builtin(ds_name, 0).unwrap();
            let rice =
                quantum_point(&ds, p, EntropyCoder::Rice, BackendKind::Panel, false).unwrap();
            let v2 = quantum_point(&ds, p, coder, BackendKind::Panel, false).unwrap();
            assert_eq!(
                v2.psnr_db.to_bits(),
                rice.psnr_db.to_bits(),
                "{ds_name}/{coder}"
            );
            assert_eq!(v2.ssim.to_bits(), rice.ssim.to_bits(), "{ds_name}/{coder}");
            assert!(
                v2.bpp < rice.bpp,
                "{ds_name}/{coder}: {} bpp did not beat rice's {} bpp",
                v2.bpp,
                rice.bpp
            );
        }
        // The headline gate: ≥ 5 % payload reduction on the golden
        // point (blobs, tile 4, d 8, 8 bits) from per-position coding.
        let ds = blobs();
        let rice = quantum_point(&ds, p, EntropyCoder::Rice, BackendKind::Panel, false).unwrap();
        let pos = quantum_point(&ds, p, EntropyCoder::RicePos, BackendKind::Panel, false).unwrap();
        assert!(
            pos.bpp <= rice.bpp * 0.95,
            "rice-pos saved only {:.2} % at the golden point",
            (1.0 - pos.bpp / rice.bpp) * 100.0
        );
    }
}
