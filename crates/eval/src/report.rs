//! Report assembly and serialisation: the orchestration layer that
//! turns (datasets × grid × baselines) into a [`QualityReport`], the
//! stable `BENCH_quality.json` document, and a human-readable table.
//!
//! **Byte stability.** Every number in the JSON document is formatted
//! with a fixed precision and every key written in a fixed order, so
//! two runs at the same seed produce byte-identical files — that is
//! what lets CI `cmp` two fresh sweeps and what makes the checked-in
//! `BENCH_quality.json` a meaningful diff in later PRs. Wall-clock
//! throughput is therefore **excluded** unless explicitly requested
//! (`timings = true`), and an infinite PSNR (lossless point)
//! serialises as the sentinel `999.0`.

use crate::baselines;
use crate::gates::{QualityGates, GOLDEN};
use crate::grid::Grid;
use crate::registry::Dataset;
use crate::sweep::{self, RdPoint};

/// JSON sentinel for an infinite (lossless) PSNR.
pub const PSNR_SENTINEL_DB: f64 = 999.0;

/// Which classical baselines a sweep evaluates.
#[derive(Debug, Clone, Copy)]
pub struct BaselineSet {
    /// Rank-`k` SVD of the dataset matrix.
    pub svd: bool,
    /// Tile-level PCA at the matched operating point.
    pub pca: bool,
    /// K-SVD/OMP sparse coding (paper-regime datasets only).
    pub csc: bool,
}

impl BaselineSet {
    /// No baselines (quantum sweep only).
    pub fn none() -> Self {
        BaselineSet {
            svd: false,
            pca: false,
            csc: false,
        }
    }

    /// The default roster: SVD + PCA + CSC.
    pub fn all() -> Self {
        BaselineSet {
            svd: true,
            pca: true,
            csc: true,
        }
    }

    /// Parse a comma-separated roster (`svd,pca`, `all`, `none`).
    ///
    /// # Errors
    /// Names the first unknown baseline.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "all" => return Ok(BaselineSet::all()),
            "none" => return Ok(BaselineSet::none()),
            _ => {}
        }
        let mut set = BaselineSet::none();
        for name in spec.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            match name {
                "svd" => set.svd = true,
                "pca" => set.pca = true,
                "csc" => set.csc = true,
                other => {
                    return Err(format!(
                        "unknown baseline {other:?} (expected svd, pca, csc, all or none)"
                    ))
                }
            }
        }
        Ok(set)
    }
}

/// One dataset's slice of the report.
#[derive(Debug, Clone)]
pub struct DatasetReport {
    /// Registry (or directory) name.
    pub name: String,
    /// Number of images.
    pub images: usize,
    /// Total pixels across the dataset.
    pub pixels: usize,
    /// Effective rank of the stacked dataset matrix (`None` for
    /// mixed-size datasets).
    pub effective_rank: Option<usize>,
    /// Every measured RD point: the quantum sweep first, then the
    /// baselines, in grid order.
    pub points: Vec<RdPoint>,
    /// Baseline points that could not be measured on this dataset
    /// (e.g. SVD rank above `min(M, N)`, CSC above its dictionary
    /// cap), with the reason — deterministic, so they live in the
    /// stable JSON rather than vanishing silently.
    pub skipped: Vec<String>,
}

/// The full quality report — everything `BENCH_quality.json` holds.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Backend the quantum sweep ran through.
    pub backend: String,
    /// Grid name (`smoke`, `default`, `custom`).
    pub grid: String,
    /// Dataset seed (0 = the canonical roster).
    pub seed: u64,
    /// Per-dataset results, in roster order.
    pub datasets: Vec<DatasetReport>,
}

impl QualityReport {
    /// Run the full evaluation: the quantum sweep on every dataset ×
    /// grid corner, plus the requested baselines at matched operating
    /// points.
    ///
    /// # Errors
    /// Quantum-sweep failures abort (they mean the grid is invalid for
    /// the dataset); baseline failures are recorded per dataset in
    /// [`DatasetReport::skipped`].
    pub fn build(
        datasets: &[Dataset],
        grid: &Grid,
        baselines: &BaselineSet,
        timings: bool,
        seed: u64,
    ) -> Result<QualityReport, String> {
        let mut reports = Vec::with_capacity(datasets.len());
        for ds in datasets {
            let mut points = sweep::quantum_sweep(ds, grid, timings)?;
            let mut skipped = Vec::new();
            let mut push = |result: Result<RdPoint, String>, skipped: &mut Vec<String>| match result
            {
                Ok(p) => points.push(p),
                Err(e) => skipped.push(e),
            };
            // Baseline fits (SVD factorisation, PCA fit, CSC dictionary
            // training) are re-run per (d, bits) corner even though only
            // the quantization step depends on bits — a deliberate
            // simplicity/speed tradeoff: each point stays independently
            // reproducible from its parameters alone, and the whole
            // default sweep measures ~0.1 s. Split fit from quantize if
            // grids ever grow a wide bits axis.
            if baselines.svd {
                // One SVD point per distinct (d, bits) corner: the rank
                // axis mirrors the latent axis.
                let mut seen = Vec::new();
                for p in &grid.points {
                    if seen.contains(&(p.latent_dim, p.bits)) {
                        continue;
                    }
                    seen.push((p.latent_dim, p.bits));
                    push(baselines::svd_point(ds, p.latent_dim, p.bits), &mut skipped);
                }
            }
            if baselines.pca {
                for &p in &grid.points {
                    push(baselines::pca_point(ds, p), &mut skipped);
                }
            }
            if baselines.csc {
                let mut seen = Vec::new();
                for p in &grid.points {
                    if seen.contains(&(p.latent_dim, p.bits)) {
                        continue;
                    }
                    seen.push((p.latent_dim, p.bits));
                    push(baselines::csc_point(ds, p.latent_dim, p.bits), &mut skipped);
                }
            }
            reports.push(DatasetReport {
                name: ds.name.clone(),
                images: ds.images.len(),
                pixels: ds.pixels(),
                effective_rank: ds.effective_rank(1e-10),
                points,
                skipped,
            });
        }
        Ok(QualityReport {
            backend: grid.backend.to_string(),
            grid: grid.name.clone(),
            seed,
            datasets: reports,
        })
    }

    /// Serialise as the stable `BENCH_quality.json` document (single
    /// trailing newline, fixed key order, fixed float precision).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"format\": \"qn-eval-quality\",\n");
        // Schema version 2: points carry the entropy-coder axis.
        s.push_str("  \"version\": 2,\n");
        s.push_str(&format!("  \"backend\": \"{}\",\n", self.backend));
        s.push_str(&format!("  \"grid\": \"{}\",\n", self.grid));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"golden\": {{\"dataset\": \"{}\", \"tile\": {}, \"d\": {}, \"bits\": {}, \
             \"psnr_floor_db\": {}, \"bpp_ceiling\": {}}},\n",
            GOLDEN.dataset,
            GOLDEN.point.tile_size,
            GOLDEN.point.latent_dim,
            GOLDEN.point.bits,
            fmt(QualityGates::PINNED.psnr_floor_db),
            fmt(QualityGates::PINNED.bpp_ceiling),
        ));
        s.push_str("  \"datasets\": [\n");
        for (i, ds) in self.datasets.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&ds.name)));
            s.push_str(&format!("      \"images\": {},\n", ds.images));
            s.push_str(&format!("      \"pixels\": {},\n", ds.pixels));
            match ds.effective_rank {
                Some(r) => s.push_str(&format!("      \"effective_rank\": {r},\n")),
                None => s.push_str("      \"effective_rank\": null,\n"),
            }
            s.push_str("      \"points\": [\n");
            for (j, p) in ds.points.iter().enumerate() {
                s.push_str("        ");
                s.push_str(&point_json(p));
                s.push_str(if j + 1 < ds.points.len() { ",\n" } else { "\n" });
            }
            s.push_str("      ],\n");
            s.push_str("      \"skipped\": [");
            for (j, msg) in ds.skipped.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\"", json_escape(msg)));
            }
            s.push_str("]\n");
            s.push_str(if i + 1 < self.datasets.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Render the fixed-width summary table (one row per point).
    pub fn human_table(&self) -> String {
        let header = [
            "dataset", "codec", "entropy", "point", "bpp", "psnr_db", "ssim", "side_B",
        ];
        let mut rows: Vec<Vec<String>> = Vec::new();
        for ds in &self.datasets {
            for p in &ds.points {
                let label = if p.tile_size > 0 {
                    format!("tile{}-d{}-b{}", p.tile_size, p.latent_dim, p.bits)
                } else {
                    format!("r{}-b{}", p.latent_dim, p.bits)
                };
                let mut row = vec![
                    ds.name.clone(),
                    p.codec.clone(),
                    p.entropy.map_or("-".to_string(), |e| e.to_string()),
                    label,
                    format!("{:.3}", p.bpp),
                    if p.psnr_db.is_finite() {
                        format!("{:.2}", p.psnr_db)
                    } else {
                        "lossless".into()
                    },
                    format!("{:.4}", p.ssim),
                    format!("{}", p.side_bytes),
                ];
                if let Some(t) = p.throughput {
                    row.push(format!(
                        "enc {:.0}/s dec {:.0}/s",
                        t.encode_tiles_per_s, t.decode_tiles_per_s
                    ));
                }
                rows.push(row);
            }
        }
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (k, cell) in row.iter().enumerate() {
                if k >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[k] = widths[k].max(cell.len());
                }
            }
        }
        let render = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(k, c)| format!("{c:<w$}", w = widths.get(k).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = render(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &rows {
            out.push_str(&render(row));
            out.push('\n');
        }
        for ds in &self.datasets {
            for msg in &ds.skipped {
                out.push_str(&format!("skipped: {msg}\n"));
            }
        }
        out
    }
}

/// Minimal JSON string escaping for values that can carry arbitrary
/// text (dataset names come from `--dir` directory names, skip
/// reasons embed error messages).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '\\' => "\\\\".chars().collect::<Vec<_>>(),
            '"' => "\\\"".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\r' => "\\r".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Fixed-precision float formatting for the stable JSON (6 decimals,
/// `+∞` → [`PSNR_SENTINEL_DB`]).
fn fmt(v: f64) -> String {
    let v = if v.is_infinite() { PSNR_SENTINEL_DB } else { v };
    format!("{v:.6}")
}

fn point_json(p: &RdPoint) -> String {
    let entropy = p.entropy.map_or("null".to_string(), |e| format!("\"{e}\""));
    let mut s = format!(
        "{{\"codec\": \"{}\", \"entropy\": {entropy}, \"tile\": {}, \"d\": {}, \"bits\": {}, \
         \"bpp\": {}, \"psnr_db\": {}, \"ssim\": {}, \"side_bytes\": {}",
        p.codec,
        p.tile_size,
        p.latent_dim,
        p.bits,
        fmt(p.bpp),
        fmt(p.psnr_db),
        fmt(p.ssim),
        p.side_bytes,
    );
    if let Some(t) = p.throughput {
        s.push_str(&format!(
            ", \"encode_tiles_per_s\": {}, \"decode_tiles_per_s\": {}",
            fmt(t.encode_tiles_per_s),
            fmt(t.decode_tiles_per_s)
        ));
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn tiny_report() -> QualityReport {
        QualityReport::build(
            &registry::resolve("glyphs", 0).unwrap(),
            &Grid::parse("d=4;bits=8").unwrap(),
            &BaselineSet::parse("svd,pca").unwrap(),
            false,
            0,
        )
        .unwrap()
    }

    #[test]
    fn json_is_byte_stable_across_reruns() {
        let a = tiny_report().to_json();
        let b = tiny_report().to_json();
        assert_eq!(a, b);
        assert!(a.ends_with("}\n"));
        assert!(a.contains("\"format\": \"qn-eval-quality\""));
        assert!(a.contains("\"codec\": \"quantum\""));
        assert!(a.contains("\"codec\": \"svd\""));
        assert!(a.contains("\"codec\": \"pca\""));
        assert!(a.contains("\"golden\""));
    }

    #[test]
    fn baseline_roster_parses() {
        let all = BaselineSet::parse("all").unwrap();
        assert!(all.svd && all.pca && all.csc);
        let none = BaselineSet::parse("none").unwrap();
        assert!(!none.svd && !none.pca && !none.csc);
        let some = BaselineSet::parse("svd, csc").unwrap();
        assert!(some.svd && !some.pca && some.csc);
        assert!(BaselineSet::parse("jpeg").is_err());
    }

    #[test]
    fn infeasible_baselines_are_skipped_with_reasons() {
        // blobs: 6 images → SVD rank 8 > min(M, N) = 6, CSC over the
        // dictionary cap. Both must land in `skipped`, not vanish.
        let report = QualityReport::build(
            &registry::resolve("blobs", 0).unwrap(),
            &Grid::parse("d=8;bits=8").unwrap(),
            &BaselineSet::all(),
            false,
            0,
        )
        .unwrap();
        let ds = &report.datasets[0];
        assert_eq!(ds.skipped.len(), 2, "skipped: {:?}", ds.skipped);
        assert!(ds.points.iter().any(|p| p.codec == "quantum"));
        assert!(ds.points.iter().any(|p| p.codec == "pca"));
        assert!(!ds.points.iter().any(|p| p.codec == "svd"));
        let json = report.to_json();
        assert!(json.contains("\"skipped\": [\""));
    }

    #[test]
    fn human_table_lists_every_point() {
        let report = tiny_report();
        let table = report.human_table();
        let expected: usize = report.datasets.iter().map(|d| d.points.len()).sum();
        // Header + separator + one row per point.
        assert_eq!(table.lines().count(), 2 + expected);
        assert!(table.contains("glyphs"));
        assert!(table.starts_with("dataset"));
    }

    #[test]
    fn psnr_sentinel_replaces_infinity_in_json() {
        assert_eq!(fmt(f64::INFINITY), "999.000000");
        assert_eq!(fmt(1.25), "1.250000");
    }

    #[test]
    fn hostile_dataset_names_stay_valid_json() {
        // --dir dataset names come from directory names, which may
        // hold quotes/backslashes/control characters.
        assert_eq!(json_escape(r#"my"set"#), r#"my\"set"#);
        assert_eq!(json_escape(r"a\b"), r"a\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        let ds = crate::registry::Dataset {
            name: "quo\"te\\dir".into(),
            images: crate::registry::builtin("glyphs", 0).unwrap().images,
        };
        let report = QualityReport::build(
            &[ds],
            &Grid::parse("d=4;bits=8").unwrap(),
            &BaselineSet::none(),
            false,
            0,
        )
        .unwrap();
        let json = report.to_json();
        assert!(json.contains(r#""name": "quo\"te\\dir""#), "{json}");
    }
}
