//! Operating-point grids: which (tile size, latent dimension, quantizer
//! bits) corners the sweep visits.
//!
//! Grid specs parse from a compact `key=values` syntax so CI and the
//! CLI share one vocabulary:
//!
//! ```text
//! tile=4;d=2,4,8;bits=4,8        # explicit grid (cartesian product)
//! tile=4;d=8;entropy=rice,range  # add the entropy-coder axis
//! smoke                          # the CI smoke grid
//! default                       # the full checked-in grid
//! ```
//!
//! The entropy axis is orthogonal to the geometry: the same operating
//! point is swept once per coder (entropy coding is lossless re the
//! quantized levels, so PSNR/SSIM repeat and only the rate moves — the
//! axis exists to measure exactly that rate delta). Both named grids
//! sweep all three coders.

use qn_backend::BackendKind;
use qn_codec::EntropyCoder;

/// One corner of the sweep: the codec settings a rate–distortion point
/// is measured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatingPoint {
    /// Tile edge length (`tile_size²` pixels per state vector).
    pub tile_size: usize,
    /// Latent dimension `d` (and the matched classical rank).
    pub latent_dim: usize,
    /// Quantizer bit depth.
    pub bits: u8,
}

impl OperatingPoint {
    /// Compact stable label, e.g. `tile4-d8-b8`.
    pub fn label(&self) -> String {
        format!("tile{}-d{}-b{}", self.tile_size, self.latent_dim, self.bits)
    }
}

/// A full sweep grid: the cartesian product corners plus the backend
/// every mesh pass runs through (backends are bit-compatible, so this
/// only affects throughput measurements).
#[derive(Debug, Clone)]
pub struct Grid {
    /// Stable name recorded in the report (`smoke`, `default`, `custom`).
    pub name: String,
    /// The operating points, in sweep order.
    pub points: Vec<OperatingPoint>,
    /// Entropy coders each point is swept with, in sweep order.
    pub coders: Vec<EntropyCoder>,
    /// Execution backend for the quantum sweep.
    pub backend: BackendKind,
}

impl Grid {
    /// Build the cartesian product of the given axes.
    pub fn cartesian(
        name: &str,
        tiles: &[usize],
        dims: &[usize],
        bits: &[u8],
        coders: &[EntropyCoder],
    ) -> Self {
        let mut points = Vec::new();
        for &tile_size in tiles {
            for &latent_dim in dims {
                for &b in bits {
                    if latent_dim >= 1 && latent_dim <= tile_size * tile_size {
                        points.push(OperatingPoint {
                            tile_size,
                            latent_dim,
                            bits: b,
                        });
                    }
                }
            }
        }
        Grid {
            name: name.into(),
            points,
            coders: coders.to_vec(),
            backend: BackendKind::default(),
        }
    }

    /// The CI smoke grid: three latent dimensions at 8 bits, tile 4,
    /// all three entropy coders — small enough for every CI run, and
    /// it contains [`crate::GOLDEN`].
    pub fn smoke() -> Self {
        Grid::cartesian("smoke", &[4], &[2, 4, 8], &[8], &EntropyCoder::ALL)
    }

    /// The full checked-in grid behind `BENCH_quality.json`: latent
    /// dimensions 2/4/8 at 4 and 8 bits, tile 4, all three entropy
    /// coders.
    pub fn default_grid() -> Self {
        Grid::cartesian("default", &[4], &[2, 4, 8], &[4, 8], &EntropyCoder::ALL)
    }

    /// Parse a grid spec: `smoke`, `default`, or
    /// `tile=..;d=..;bits=..;entropy=..` with comma-separated values
    /// per axis (entropy values: `rice`, `rice-pos`, `range`).
    ///
    /// # Errors
    /// Describes the offending clause; rejects empty grids (e.g. every
    /// `d` exceeding `tile²`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "smoke" => return Ok(Grid::smoke()),
            "default" => return Ok(Grid::default_grid()),
            _ => {}
        }
        let mut tiles: Vec<usize> = vec![4];
        let mut dims: Vec<usize> = vec![8];
        let mut bits: Vec<u8> = vec![8];
        let mut coders: Vec<EntropyCoder> = vec![EntropyCoder::Rice];
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, values) = clause
                .split_once('=')
                .ok_or_else(|| format!("grid clause {clause:?} is not key=values"))?;
            let parse_list = |what: &str| -> Result<Vec<u64>, String> {
                values
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse::<u64>()
                            .map_err(|_| format!("bad {what} value {v:?} in grid spec"))
                    })
                    .collect()
            };
            match key.trim() {
                "tile" => tiles = parse_list("tile")?.iter().map(|&v| v as usize).collect(),
                "d" => dims = parse_list("d")?.iter().map(|&v| v as usize).collect(),
                "bits" => {
                    bits = parse_list("bits")?
                        .iter()
                        .map(|&v| {
                            u8::try_from(v).map_err(|_| format!("bits value {v} exceeds 255"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "entropy" => {
                    coders = values
                        .split(',')
                        .map(|v| v.trim().parse::<EntropyCoder>())
                        .collect::<Result<_, _>>()?;
                    if coders.is_empty() {
                        return Err("entropy axis must name at least one coder".into());
                    }
                }
                other => {
                    return Err(format!(
                        "unknown grid axis {other:?} (expected tile, d, bits or entropy)"
                    ))
                }
            }
        }
        let grid = Grid::cartesian("custom", &tiles, &dims, &bits, &coders);
        if grid.points.is_empty() {
            return Err(format!(
                "grid spec {spec:?} yields no valid operating points (is every d > tile²?)"
            ));
        }
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_grids_contain_the_golden_point() {
        for grid in [Grid::smoke(), Grid::default_grid()] {
            assert!(
                grid.points.contains(&crate::GOLDEN.point),
                "{} grid must include the golden operating point",
                grid.name
            );
            assert_eq!(
                grid.coders,
                EntropyCoder::ALL.to_vec(),
                "{} grid must sweep every entropy coder",
                grid.name
            );
        }
        assert_eq!(Grid::smoke().points.len(), 3);
        assert_eq!(Grid::default_grid().points.len(), 6);
    }

    #[test]
    fn specs_parse_as_cartesian_products() {
        let g = Grid::parse("tile=4;d=2,8;bits=4,8").unwrap();
        assert_eq!(g.points.len(), 4);
        assert_eq!(
            g.points[0],
            OperatingPoint {
                tile_size: 4,
                latent_dim: 2,
                bits: 4
            }
        );
        assert_eq!(g.coders, vec![EntropyCoder::Rice], "default entropy axis");
        // Named specs resolve too.
        assert_eq!(Grid::parse("smoke").unwrap().points.len(), 3);
        // Omitted axes take defaults.
        let d_only = Grid::parse("d=4").unwrap();
        assert_eq!(d_only.points.len(), 1);
        assert_eq!(d_only.points[0].tile_size, 4);
        assert_eq!(d_only.points[0].bits, 8);
    }

    #[test]
    fn entropy_axis_parses_and_rejects_unknown_coders() {
        let g = Grid::parse("d=8;entropy=rice,rice-pos,range").unwrap();
        assert_eq!(g.coders, EntropyCoder::ALL.to_vec());
        let one = Grid::parse("entropy=range").unwrap();
        assert_eq!(one.coders, vec![EntropyCoder::Range]);
        assert!(Grid::parse("entropy=huffman").is_err());
    }

    #[test]
    fn invalid_latent_dims_are_dropped_not_swept() {
        // d = 32 exceeds tile² = 16: dropped from the product.
        let g = Grid::parse("tile=4;d=8,32;bits=8").unwrap();
        assert_eq!(g.points.len(), 1);
        // A grid of only invalid corners is an error, not an empty sweep.
        assert!(Grid::parse("tile=2;d=5;bits=8").is_err());
        assert!(Grid::parse("potato").is_err());
        assert!(Grid::parse("speed=11").is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(crate::GOLDEN.point.label(), "tile4-d8-b8");
    }
}
