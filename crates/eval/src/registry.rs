//! The dataset registry: every evaluation input is a *named*,
//! deterministic image set, so a rate–distortion point is reproducible
//! from its dataset name and the operating point alone.
//!
//! Built-in names (all seeded, all stable across reruns):
//!
//! | name         | contents                                   | size  |
//! |--------------|--------------------------------------------|-------|
//! | `paper`      | the 25-sample paper-regime binary set      | 4×4   |
//! | `paper-hard` | quadrant unions + off-subspace glyphs      | 4×4   |
//! | `glyphs`     | the 10 structured glyphs alone             | 4×4   |
//! | `blobs`      | smooth grayscale Gaussian blobs            | 16×16 |
//! | `lowrank`    | rank-4 binary ensembles                    | 8×8   |
//!
//! A directory of `.pgm` files loads as an ad-hoc dataset named after
//! the directory (sorted by file name — see `qn_image::pgm::read_pgm_dir`).

use qn_image::{datasets, pgm, GrayImage};
use std::path::Path;

/// Fixed seed for the `blobs` dataset (shifted by the sweep seed).
const BLOBS_SEED: u64 = 0x514E_4556; // "QNEV"
/// Fixed seed for the `lowrank` dataset (shifted by the sweep seed).
const LOWRANK_SEED: u64 = 0x514E_4557;

/// A named evaluation dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Registry name (or directory stem for ad-hoc PGM datasets).
    pub name: String,
    /// The images, in registry order.
    pub images: Vec<GrayImage>,
}

impl Dataset {
    /// Wrap an explicit image list under a name.
    ///
    /// # Panics
    /// Panics on an empty image list — every registry entry is
    /// non-empty by construction, and the sweep math divides by pixel
    /// counts.
    pub fn new(name: impl Into<String>, images: Vec<GrayImage>) -> Self {
        assert!(!images.is_empty(), "dataset must hold at least one image");
        Dataset {
            name: name.into(),
            images,
        }
    }

    /// Total pixel count across all images.
    pub fn pixels(&self) -> usize {
        self.images.iter().map(GrayImage::len).sum()
    }

    /// `Some((w, h))` when every image shares one shape — the
    /// precondition for the dataset-matrix baselines (SVD, CSC) and for
    /// [`Dataset::effective_rank`].
    pub fn uniform_shape(&self) -> Option<(usize, usize)> {
        let first = (self.images[0].width(), self.images[0].height());
        self.images
            .iter()
            .all(|i| (i.width(), i.height()) == first)
            .then_some(first)
    }

    /// Effective rank of the stacked dataset matrix (`None` for
    /// mixed-size datasets). Reported per dataset so the
    /// compressibility behind each RD curve is explicit.
    pub fn effective_rank(&self, tol: f64) -> Option<usize> {
        self.uniform_shape()
            .map(|_| datasets::effective_rank(&self.images, tol))
    }
}

/// The built-in registry names, in report order.
pub const BUILTIN: [&str; 5] = ["paper", "paper-hard", "glyphs", "blobs", "lowrank"];

/// The default evaluation roster: every built-in dataset.
pub fn all_builtin(seed: u64) -> Vec<Dataset> {
    BUILTIN
        .iter()
        .map(|n| builtin(n, seed).expect("BUILTIN names resolve"))
        .collect()
}

/// Resolve one built-in dataset by name. `seed` shifts the generator
/// seeds of the randomised sets (`blobs`, `lowrank`); seed 0 is the
/// canonical roster every checked-in report uses.
pub fn builtin(name: &str, seed: u64) -> Option<Dataset> {
    let images = match name {
        "paper" => datasets::paper_binary_16(25),
        "paper-hard" => datasets::paper_binary_16_hard(25),
        "glyphs" => datasets::structured_glyphs(),
        "blobs" => datasets::grayscale_blobs(6, 16, 16, BLOBS_SEED.wrapping_add(seed)),
        "lowrank" => datasets::low_rank_binary(12, 8, 8, 4, LOWRANK_SEED.wrapping_add(seed)),
        _ => return None,
    };
    Some(Dataset::new(name, images))
}

/// Resolve a comma-separated roster of built-in names.
///
/// # Errors
/// Names the first unknown dataset, listing the registry.
pub fn resolve(names: &str, seed: u64) -> Result<Vec<Dataset>, String> {
    names
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(|n| {
            builtin(n, seed).ok_or_else(|| {
                format!(
                    "unknown dataset {n:?}; the registry holds: {}",
                    BUILTIN.join(", ")
                )
            })
        })
        .collect()
}

/// Load a directory of `.pgm` files as a dataset named after the
/// directory.
///
/// # Errors
/// IO/parse failures from `qn_image::pgm::read_pgm_dir`.
pub fn from_pgm_dir(dir: &Path) -> Result<Dataset, String> {
    let images = pgm::read_pgm_dir(dir)
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|(_, img)| img)
        .collect();
    let name = dir.file_name().map_or_else(
        || "pgm-dir".to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    Ok(Dataset::new(name, images))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_resolves_and_is_deterministic() {
        for name in BUILTIN {
            let a = builtin(name, 0).unwrap();
            let b = builtin(name, 0).unwrap();
            assert_eq!(a.images, b.images, "{name} must be rerun-stable");
            assert!(!a.images.is_empty());
            assert!(a.uniform_shape().is_some(), "{name} is uniform");
            assert!(a.effective_rank(1e-10).unwrap() >= 1);
        }
        assert!(builtin("no-such-set", 0).is_none());
    }

    #[test]
    fn seeds_shift_the_randomised_sets_only() {
        assert_eq!(
            builtin("paper", 0).unwrap().images,
            builtin("paper", 9).unwrap().images
        );
        assert_ne!(
            builtin("blobs", 0).unwrap().images,
            builtin("blobs", 9).unwrap().images
        );
    }

    #[test]
    fn resolve_parses_rosters_and_rejects_unknowns() {
        let ds = resolve("paper, blobs", 0).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].name, "paper");
        assert_eq!(ds[1].name, "blobs");
        let err = resolve("paper,nope", 0).unwrap_err();
        assert!(err.contains("nope") && err.contains("registry"), "{err}");
    }

    #[test]
    fn pgm_dir_round_trips_as_a_dataset() {
        let dir = std::env::temp_dir()
            .join("qn_eval_registry")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let img = datasets::grayscale_blobs(1, 8, 8, 3).remove(0);
        pgm::write_pgm(&img, &dir.join("one.pgm")).unwrap();
        let ds = from_pgm_dir(&dir).unwrap();
        assert_eq!(ds.images.len(), 1);
        assert_eq!(ds.uniform_shape(), Some((8, 8)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
