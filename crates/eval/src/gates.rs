//! CI quality gates: the pinned floor under the quantum codec's
//! quality at one **golden operating point**, checked by the named
//! "Quality gates" CI step on every push.
//!
//! The golden point is `blobs` at tile 4, `d = 8`, 8 bits — the
//! default `qnc compress` setting on the only smooth grayscale
//! registry dataset, i.e. the configuration an ordinary user hits
//! first. The floor/ceiling are pinned from the measured seed values
//! (see `BENCH_quality.json`) with margin for numeric drift, **not**
//! recomputed per run: a regression that drops PSNR below the floor or
//! inflates the bitstream above the ceiling fails CI by name.

use crate::grid::OperatingPoint;
use crate::report::QualityReport;

/// Where the gate is measured: a registry dataset plus one operating
/// point of the quantum codec.
#[derive(Debug, Clone, Copy)]
pub struct GoldenPoint {
    /// Registry dataset name.
    pub dataset: &'static str,
    /// The operating point.
    pub point: OperatingPoint,
}

/// The golden operating point every grid that feeds the gate must
/// contain (both named grids do).
pub const GOLDEN: GoldenPoint = GoldenPoint {
    dataset: "blobs",
    point: OperatingPoint {
        tile_size: 4,
        latent_dim: 8,
        bits: 8,
    },
};

/// Pinned limits at [`GOLDEN`].
#[derive(Debug, Clone, Copy)]
pub struct QualityGates {
    /// Minimum acceptable PSNR (dB).
    pub psnr_floor_db: f64,
    /// Maximum acceptable payload rate (bits per pixel).
    pub bpp_ceiling: f64,
}

impl QualityGates {
    /// The checked-in limits. Seed measurement at [`GOLDEN`]:
    /// PSNR ≈ 49.4 dB at ≈ 6.33 bpp (`BENCH_quality.json`); the floor
    /// sits ~4 dB below and the ceiling ~10 % above, wide enough for
    /// numeric drift, tight enough to catch a real quality or rate
    /// regression.
    pub const PINNED: QualityGates = QualityGates {
        psnr_floor_db: 45.0,
        bpp_ceiling: 7.0,
    };
}

/// What the gate saw at the golden point.
#[derive(Debug, Clone, Copy)]
pub struct GateOutcome {
    /// Measured PSNR at the golden point.
    pub psnr_db: f64,
    /// Measured payload rate at the golden point.
    pub bpp: f64,
}

/// Check a report against the gates.
///
/// # Errors
/// One message per violation — a missing golden point (dataset or
/// operating point not swept) is itself a violation, so a gate can
/// never silently pass by not measuring.
pub fn check(report: &QualityReport, gates: &QualityGates) -> Result<GateOutcome, Vec<String>> {
    let golden = report
        .datasets
        .iter()
        .find(|d| d.name == GOLDEN.dataset)
        .and_then(|d| {
            // The gate is pinned on the v1 rice bitstream: v2 coders
            // only ever lower the rate at identical distortion, so
            // gating the v1 point keeps the limits meaningful across
            // entropy-axis sweeps.
            d.points.iter().find(|p| {
                p.codec == "quantum"
                    && p.entropy == Some(qn_codec::EntropyCoder::Rice)
                    && p.tile_size == GOLDEN.point.tile_size
                    && p.latent_dim == GOLDEN.point.latent_dim
                    && p.bits == GOLDEN.point.bits
            })
        });
    let Some(point) = golden else {
        return Err(vec![format!(
            "quality gate: golden point ({} @ {}) was not swept — \
             include dataset {:?} and the golden operating point in the grid",
            GOLDEN.dataset,
            GOLDEN.point.label(),
            GOLDEN.dataset
        )]);
    };
    let mut violations = Vec::new();
    // NaN-hostile comparisons: a NaN measurement violates the gate
    // rather than slipping past a `<`.
    if point.psnr_db < gates.psnr_floor_db || point.psnr_db.is_nan() {
        violations.push(format!(
            "quality gate: PSNR {:.2} dB at the golden point fell below the pinned floor {:.2} dB",
            point.psnr_db, gates.psnr_floor_db
        ));
    }
    if point.bpp > gates.bpp_ceiling || point.bpp.is_nan() {
        violations.push(format!(
            "quality gate: rate {:.3} bpp at the golden point exceeds the pinned ceiling {:.3} bpp",
            point.bpp, gates.bpp_ceiling
        ));
    }
    if violations.is_empty() {
        Ok(GateOutcome {
            psnr_db: point.psnr_db,
            bpp: point.bpp,
        })
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BaselineSet, QualityReport};
    use crate::{registry, Grid};

    fn smoke_report() -> QualityReport {
        QualityReport::build(
            &[registry::builtin("blobs", 0).unwrap()],
            &Grid::smoke(),
            &BaselineSet::none(),
            false,
            0,
        )
        .unwrap()
    }

    #[test]
    fn pinned_gates_pass_on_the_seed_measurement() {
        let report = smoke_report();
        let outcome = check(&report, &QualityGates::PINNED).expect("gates pass at seed");
        assert!(outcome.psnr_db >= QualityGates::PINNED.psnr_floor_db);
        assert!(outcome.bpp <= QualityGates::PINNED.bpp_ceiling);
    }

    #[test]
    fn violations_name_the_limit_that_broke() {
        let report = smoke_report();
        let impossible = QualityGates {
            psnr_floor_db: 1000.0,
            bpp_ceiling: 0.001,
        };
        let errs = check(&report, &impossible).unwrap_err();
        assert_eq!(errs.len(), 2);
        assert!(errs[0].contains("below the pinned floor"), "{}", errs[0]);
        assert!(
            errs[1].contains("exceeds the pinned ceiling"),
            "{}",
            errs[1]
        );
    }

    #[test]
    fn missing_golden_point_is_a_violation_not_a_pass() {
        let report = QualityReport::build(
            &[registry::builtin("paper", 0).unwrap()],
            &Grid::smoke(),
            &BaselineSet::none(),
            false,
            0,
        )
        .unwrap();
        let errs = check(&report, &QualityGates::PINNED).unwrap_err();
        assert!(errs[0].contains("was not swept"), "{}", errs[0]);
    }
}
