//! Classical baselines evaluated with the quantum sweep's metrics and
//! rate accounting, so every `BENCH_quality.json` point is directly
//! comparable:
//!
//! - **SVD** — rank-`k` truncation of the stacked dataset matrix
//!   (Eckart–Young optimal), `k` coefficients per image quantized at
//!   the operating bits, the `k × N` basis amortized as side info.
//!   This is the information-theoretic floor any rank-`k` method —
//!   including the quantum network with `d = k` — is bounded by.
//! - **PCA** — the tile-level twin of the quantum codec (the
//!   classically-simulable content of the paper's qPCA reference):
//!   `d` principal coefficients per `tile²` tile at the operating
//!   bits, components + mean amortized. Matches the quantum operating
//!   point one-for-one.
//! - **CSC** — the paper's sparse-coding comparison: a learned
//!   dictionary (K-SVD updates, OMP coding), `s` quantized
//!   coefficients *plus their atom indices* per image. Run where the
//!   dataset shape admits it (uniform, small signal dimension).
//!
//! All coefficient quantization uses the codec's own uniform
//! [`Quantizer`] over a dataset-level scale (the scale is side info),
//! so "bits" means the same thing on every curve.

use crate::grid::OperatingPoint;
use crate::registry::Dataset;
use crate::sweep::{DistortionAccum, RdPoint};
use qn_classical::csc::{CscConfig, CscPipeline, DictUpdate, SparseCoder};
use qn_classical::pca::Pca;
use qn_classical::svd_compress;
use qn_classical::Dictionary;
use qn_codec::Quantizer;
use qn_image::{tiles, GrayImage};

/// Largest signal dimension (pixels per image) the CSC baseline will
/// learn a square dictionary for — K-SVD is cubic-ish in it.
pub const CSC_MAX_SIGNAL_DIM: usize = 64;

/// Dictionary-learning sweeps for the CSC baseline (kept small: the
/// baseline converges in a few sweeps on these datasets and eval must
/// stay CI-sized).
const CSC_ITERATIONS: usize = 12;

/// Quantize a value against a dataset-level scale with the codec's
/// uniform quantizer (identity when the scale is zero).
fn quantize_scaled(q: &Quantizer, scale: f64, v: f64) -> f64 {
    if scale == 0.0 {
        return 0.0;
    }
    q.dequantize(q.quantize(v / scale)) * scale
}

/// Rank-`k` SVD of the stacked dataset matrix, coefficients quantized
/// at `bits`.
///
/// # Errors
/// Mixed-size datasets and out-of-range ranks (`k > min(M, N)`) are
/// named; the report builder skips such points.
pub fn svd_point(dataset: &Dataset, rank: usize, bits: u8) -> Result<RdPoint, String> {
    let (w, h) = dataset
        .uniform_shape()
        .ok_or_else(|| format!("{}: SVD baseline needs uniform image sizes", dataset.name))?;
    let n = w * h;
    let (coeffs, basis) = svd_compress::factor_dataset(&dataset.images, rank)
        .map_err(|e| format!("{}: SVD factor: {e}", dataset.name))?;
    let q = Quantizer::new(bits).map_err(|e| e.to_string())?;
    let scale = coeffs.data().iter().fold(0.0f64, |m, &c| m.max(c.abs()));
    let mut accum = DistortionAccum::default();
    for (i, img) in dataset.images.iter().enumerate() {
        let zq: Vec<f64> = coeffs
            .row(i)
            .iter()
            .map(|&c| quantize_scaled(&q, scale, c))
            .collect();
        let pixels = basis
            .matvec_t(&zq)
            .map_err(|e| format!("{}: SVD reconstruct: {e}", dataset.name))?;
        let recon = GrayImage::from_pixels(w, h, pixels).expect("dataset geometry");
        accum.add(img, &recon.clamped());
    }
    let (psnr_db, ssim) = accum.finish();
    Ok(RdPoint {
        codec: "svd".into(),
        tile_size: 0,
        latent_dim: rank,
        bits,
        entropy: None,
        bpp: (rank as f64 * f64::from(bits)) / n as f64,
        psnr_db,
        ssim,
        // f64 basis plus the dataset-level coefficient scale.
        side_bytes: 8 * rank * n + 8,
        throughput: None,
    })
}

/// Tile-level PCA at the quantum codec's exact operating point.
///
/// # Errors
/// PCA fit failures (degenerate tile sets) as strings.
pub fn pca_point(dataset: &Dataset, point: OperatingPoint) -> Result<RdPoint, String> {
    let dim = point.tile_size * point.tile_size;
    let mut tilings = Vec::with_capacity(dataset.images.len());
    let mut samples: Vec<Vec<f64>> = Vec::new();
    for img in &dataset.images {
        let tiling = tiles::tile(img, point.tile_size);
        samples.extend(tiling.tiles.iter().map(GrayImage::to_vector));
        tilings.push(tiling);
    }
    let pca = Pca::fit(&samples, point.latent_dim)
        .map_err(|e| format!("{}: PCA fit: {e}", dataset.name))?;
    // Code every tile once; the quantizer scale is the dataset-level
    // coefficient peak over those same codes.
    let codes: Vec<Vec<f64>> = samples.iter().map(|s| pca.compress(s)).collect();
    let total_tiles = codes.len();
    let q = Quantizer::new(point.bits).map_err(|e| e.to_string())?;
    let scale = codes.iter().flatten().fold(0.0f64, |m, &z| m.max(z.abs()));
    let mut accum = DistortionAccum::default();
    let mut cursor = 0usize;
    for (img, tiling) in dataset.images.iter().zip(&tilings) {
        let patches: Vec<GrayImage> = codes[cursor..cursor + tiling.tiles.len()]
            .iter()
            .map(|z| {
                let zq: Vec<f64> = z.iter().map(|&c| quantize_scaled(&q, scale, c)).collect();
                GrayImage::from_vector(point.tile_size, point.tile_size, &pca.reconstruct(&zq))
                    .expect("tile geometry fixed by construction")
            })
            .collect();
        cursor += tiling.tiles.len();
        accum.add(img, &tiles::untile(tiling, &patches).clamped());
    }
    let (psnr_db, ssim) = accum.finish();
    Ok(RdPoint {
        codec: "pca".into(),
        tile_size: point.tile_size,
        latent_dim: point.latent_dim,
        bits: point.bits,
        entropy: None,
        // Every coded tile pays d × bits — including zero-padded edge
        // tiles on images whose dimensions are not tile multiples, so
        // the rate stays honest for --dir datasets.
        bpp: (total_tiles * point.latent_dim) as f64 * f64::from(point.bits)
            / dataset.pixels() as f64,
        psnr_db,
        ssim,
        // f64 components + mean vector + the coefficient scale.
        side_bytes: 8 * (point.latent_dim * dim + dim) + 8,
        throughput: None,
    })
}

/// The CSC sparse-coding baseline: learn a square dictionary with
/// K-SVD/OMP, then code every image with `sparsity` atoms whose
/// coefficients are quantized at `bits`.
///
/// # Errors
/// Rejects mixed-size datasets and signal dimensions above
/// [`CSC_MAX_SIGNAL_DIM`].
pub fn csc_point(dataset: &Dataset, sparsity: usize, bits: u8) -> Result<RdPoint, String> {
    let (w, h) = dataset
        .uniform_shape()
        .ok_or_else(|| format!("{}: CSC baseline needs uniform image sizes", dataset.name))?;
    let n = w * h;
    if n > CSC_MAX_SIGNAL_DIM {
        return Err(format!(
            "{}: CSC baseline capped at {CSC_MAX_SIGNAL_DIM}-pixel signals, got {n}",
            dataset.name
        ));
    }
    let sparsity = sparsity.min(n);
    let config = CscConfig {
        atoms: n,
        sparsity,
        coder: SparseCoder::Omp,
        iterations: CSC_ITERATIONS,
        update: DictUpdate::Ksvd,
        seed: 7,
        accuracy_tol: 0.01,
    };
    let mut pipeline = CscPipeline::new(config, &dataset.images);
    pipeline.train();
    let dict: &Dictionary = pipeline.dictionary();
    let samples: Vec<Vec<f64>> = dataset.images.iter().map(GrayImage::to_vector).collect();
    let codes = qn_classical::omp::batch(dict, &samples, sparsity, 1e-12);
    let q = Quantizer::new(bits).map_err(|e| e.to_string())?;
    let scale = codes
        .iter()
        .flat_map(|c| c.coefficients.iter())
        .fold(0.0f64, |m, &c| m.max(c.abs()));
    let mut accum = DistortionAccum::default();
    for (img, code) in dataset.images.iter().zip(&codes) {
        let zq: Vec<f64> = code
            .coefficients
            .iter()
            .map(|&c| quantize_scaled(&q, scale, c))
            .collect();
        let recon = GrayImage::from_pixels(w, h, dict.synthesize(&zq)).expect("dataset geometry");
        accum.add(img, &recon.clamped());
    }
    let (psnr_db, ssim) = accum.finish();
    // Each kept atom costs its quantized coefficient plus its index.
    let index_bits = (usize::BITS - (n - 1).leading_zeros()) as f64;
    Ok(RdPoint {
        codec: "csc".into(),
        tile_size: 0,
        latent_dim: sparsity,
        bits,
        entropy: None,
        bpp: (sparsity as f64 * (f64::from(bits) + index_bits)) / n as f64,
        psnr_db,
        ssim,
        // f64 dictionary plus the coefficient scale.
        side_bytes: 8 * n * n + 8,
        throughput: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn svd_baseline_tracks_rank_and_is_deterministic() {
        let ds = registry::builtin("paper-hard", 0).unwrap();
        let lo = svd_point(&ds, 2, 8).unwrap();
        let hi = svd_point(&ds, 8, 8).unwrap();
        assert!(hi.psnr_db > lo.psnr_db);
        assert!(hi.bpp > lo.bpp);
        let again = svd_point(&ds, 8, 8).unwrap();
        assert_eq!(hi.psnr_db.to_bits(), again.psnr_db.to_bits());
        // Rank beyond min(M, N) is a named error, not a panic.
        assert!(svd_point(&ds, 17, 8).is_err());
    }

    #[test]
    fn svd_at_dataset_rank_is_near_lossless_on_rank4_data() {
        // paper is exactly rank 4: rank-4 SVD at high bits must be far
        // better than any lossy competitor there.
        let ds = registry::builtin("paper", 0).unwrap();
        let p = svd_point(&ds, 4, 12).unwrap();
        assert!(p.psnr_db > 50.0, "psnr {}", p.psnr_db);
        assert!(p.ssim > 0.99);
    }

    #[test]
    fn pca_matches_the_quantum_operating_point_shape() {
        let ds = registry::builtin("blobs", 0).unwrap();
        let point = OperatingPoint {
            tile_size: 4,
            latent_dim: 8,
            bits: 8,
        };
        let p = pca_point(&ds, point).unwrap();
        assert_eq!(p.codec, "pca");
        assert_eq!((p.tile_size, p.latent_dim, p.bits), (4, 8, 8));
        assert!((p.bpp - 4.0).abs() < 1e-12, "8 latents × 8 bits / 16 px");
        assert!(p.psnr_db > 20.0, "psnr {}", p.psnr_db);
        let again = pca_point(&ds, point).unwrap();
        assert_eq!(p.psnr_db.to_bits(), again.psnr_db.to_bits());
    }

    #[test]
    fn pca_rate_counts_padded_edge_tiles() {
        // 10×10 images at tile 4 pad to a 3×3 grid: 9 coded tiles of
        // d·bits over 100 real pixels — not the tile-divisible
        // d·bits/16. Understating this made --dir datasets look
        // cheaper than the quantum codec's honest container bytes.
        use qn_image::datasets;
        let ds = Dataset::new("ragged", datasets::grayscale_blobs(3, 10, 10, 5));
        let p = pca_point(
            &ds,
            OperatingPoint {
                tile_size: 4,
                latent_dim: 4,
                bits: 8,
            },
        )
        .unwrap();
        let expected = (9.0 * 4.0 * 8.0) / 100.0;
        assert!(
            (p.bpp - expected).abs() < 1e-12,
            "bpp {} vs {expected}",
            p.bpp
        );
    }

    #[test]
    fn csc_baseline_runs_on_paper_regime_sets_only() {
        let ds = registry::builtin("paper", 0).unwrap();
        let p = csc_point(&ds, 4, 8).unwrap();
        assert_eq!(p.codec, "csc");
        assert!(p.psnr_db > 10.0, "psnr {}", p.psnr_db);
        assert!(p.bpp > 0.0);
        let again = csc_point(&ds, 4, 8).unwrap();
        assert_eq!(p.psnr_db.to_bits(), again.psnr_db.to_bits());
        // 256-pixel blobs exceed the dictionary cap.
        let blobs = registry::builtin("blobs", 0).unwrap();
        assert!(csc_point(&blobs, 4, 8).is_err());
    }
}
