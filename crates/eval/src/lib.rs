//! `qn-eval` — the rate–distortion evaluation subsystem.
//!
//! The paper's central claim is a *quality* claim: the quantum network
//! reconstructs images competitively at a given compression ratio. The
//! rest of the workspace measures throughput (`BENCH_codec.json`,
//! `BENCH_serve.json`); this crate supplies the missing leg — a
//! deterministic harness that turns the in-tree ingredients
//! (`qn_image::datasets`/`metrics`, the `qn-codec` pipeline,
//! `qn_classical::{pca, svd_compress, csc}`) into reproducible
//! rate–distortion evidence:
//!
//! - [`registry`] — named, seeded datasets (the paper binary set, the
//!   hard glyph variant, grayscale blobs, low-rank ensembles) plus
//!   loading a directory of PGM files;
//! - [`grid`] — operating-point grids (latent dimension × quantizer
//!   bits × tile size) with a parseable spec syntax;
//! - [`sweep`] — the quantum sweep runner: one shared spectral model
//!   per (dataset, tile, d), every image encoded/decoded through the
//!   real `.qnc` bitstream, aggregate bpp/PSNR/SSIM per point and
//!   optional encode/decode tile throughput;
//! - [`baselines`] — classical comparisons evaluated with identical
//!   metrics and honest rate accounting: rank-`k` SVD and tile-level
//!   PCA at matched bits, and the K-SVD/OMP sparse-coding (CSC)
//!   pipeline where the dataset shape admits it;
//! - [`report`] — the `BENCH_quality.json` writer (stable key order,
//!   fixed float formatting — byte-identical across reruns at a fixed
//!   seed) and a human-readable summary table;
//! - [`gates`] — the CI quality gates: a pinned PSNR floor and bpp
//!   ceiling at the golden operating point, so every future PR is
//!   provably quality-neutral.
//!
//! The subsystem is surfaced as `qnc eval` (see `crates/serve`'s `qnc`
//! binary) and exercised by the named "Quality gates" CI step.

pub mod baselines;
pub mod gates;
pub mod grid;
pub mod registry;
pub mod report;
pub mod sweep;

pub use gates::{GateOutcome, QualityGates, GOLDEN};
pub use grid::{Grid, OperatingPoint};
pub use registry::Dataset;
pub use report::{BaselineSet, DatasetReport, QualityReport};
pub use sweep::{RdPoint, Throughput};
