//! Acceptance suite for the evaluation subsystem: the report meets the
//! PR's acceptance criteria (≥ 3 datasets × ≥ 3 quantum operating
//! points plus ≥ 2 classical baselines, byte-stable JSON at a fixed
//! seed) and the pinned quality gates hold on a fresh sweep.

use qn_eval::report::BaselineSet;
use qn_eval::{gates, registry, Grid, QualityReport};

fn acceptance_report() -> QualityReport {
    QualityReport::build(
        &registry::resolve("paper,glyphs,blobs", 0).unwrap(),
        &Grid::default_grid(),
        &BaselineSet::parse("svd,pca").unwrap(),
        false,
        0,
    )
    .unwrap()
}

#[test]
fn report_meets_the_acceptance_shape() {
    let report = acceptance_report();
    assert!(report.datasets.len() >= 3, "≥ 3 datasets");
    for ds in &report.datasets {
        let quantum = ds.points.iter().filter(|p| p.codec == "quantum").count();
        assert!(quantum >= 3, "{}: {quantum} quantum points", ds.name);
        let baselines: std::collections::BTreeSet<&str> = ds
            .points
            .iter()
            .filter(|p| p.codec != "quantum")
            .map(|p| p.codec.as_str())
            .collect();
        assert!(
            baselines.len() >= 2 || !ds.skipped.is_empty(),
            "{}: baselines {baselines:?}, skipped {:?}",
            ds.name,
            ds.skipped
        );
        for p in &ds.points {
            assert!(p.bpp > 0.0, "{}: {} bpp", ds.name, p.codec);
            assert!(p.psnr_db > 0.0);
            assert!(p.ssim > -1.0 && p.ssim <= 1.0 + 1e-12);
        }
    }
    // At least two baseline families appear somewhere in the report.
    let families: std::collections::BTreeSet<String> = report
        .datasets
        .iter()
        .flat_map(|d| d.points.iter())
        .filter(|p| p.codec != "quantum")
        .map(|p| p.codec.clone())
        .collect();
    assert!(families.len() >= 2, "baseline families: {families:?}");
}

#[test]
fn json_report_is_byte_stable_across_full_rebuilds() {
    let a = acceptance_report().to_json();
    let b = acceptance_report().to_json();
    assert_eq!(a, b, "BENCH_quality.json must be byte-stable");
    // No wall-clock fields leak into the stable document.
    assert!(!a.contains("tiles_per_s"), "timings in a stable report");
}

#[test]
fn pinned_quality_gates_hold_on_a_fresh_smoke_sweep() {
    let report = QualityReport::build(
        &registry::resolve("blobs", 0).unwrap(),
        &Grid::smoke(),
        &BaselineSet::none(),
        false,
        0,
    )
    .unwrap();
    let outcome = gates::check(&report, &gates::QualityGates::PINNED)
        .expect("pinned gates must pass at the seed");
    assert!(outcome.psnr_db.is_finite());
}

#[test]
fn quantum_beats_or_approaches_pca_at_the_matched_point_on_smooth_data() {
    // The spectral codec *is* tile PCA through an orthogonal mesh plus
    // honest bitstream costs — at the same (tile, d, bits) its PSNR
    // must land in the same regime as the PCA baseline on smooth data
    // (PCA pays no container/norm overhead, so equality is not
    // expected; a collapse of > 6 dB would mean a codec bug).
    let report = acceptance_report();
    let blobs = report
        .datasets
        .iter()
        .find(|d| d.name == "blobs")
        .expect("blobs swept");
    let q = blobs
        .points
        .iter()
        .find(|p| p.codec == "quantum" && p.latent_dim == 8 && p.bits == 8)
        .expect("golden quantum point");
    let pca = blobs
        .points
        .iter()
        .find(|p| p.codec == "pca" && p.latent_dim == 8 && p.bits == 8)
        .expect("matched pca point");
    assert!(
        q.psnr_db > pca.psnr_db - 6.0,
        "quantum {:.2} dB vs pca {:.2} dB",
        q.psnr_db,
        pca.psnr_db
    );
}
