//! K-SVD dictionary update (Aharon, Elad & Bruckstein) — the "SVD
//! algorithm" behind the paper's CSC baseline (ref [23]).
//!
//! For each atom in turn: collect the samples that use it, form the
//! residual matrix with that atom's contribution removed, and replace the
//! atom (and its coefficients) with the top singular pair of that
//! residual — the rank-1 update that minimises the Frobenius error.

use crate::dictionary::Dictionary;
use crate::mp::SparseCode;
use qn_linalg::svd::svd;
use qn_linalg::Matrix;

/// One K-SVD sweep: update every atom (and the corresponding non-zero
/// coefficients in `codes`) in place. Atoms used by no sample are left
/// unchanged.
///
/// # Panics
/// Panics on shape mismatches between `dict`, `codes` and `samples`.
pub fn ksvd_update(dict: &mut Dictionary, codes: &mut [SparseCode], samples: &[Vec<f64>]) {
    assert_eq!(codes.len(), samples.len(), "ksvd: batch sizes differ");
    let n = dict.signal_dim();
    let k = dict.atom_count();
    for code in codes.iter() {
        assert_eq!(code.coefficients.len(), k, "ksvd: code length mismatch");
    }

    for atom_idx in 0..k {
        // Samples whose code uses this atom.
        let users: Vec<usize> = codes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| (c.coefficients[atom_idx] != 0.0).then_some(i))
            .collect();
        if users.is_empty() {
            continue;
        }
        // Residual matrix E = Y − Σ_{j≠atom} d_j s_j, restricted to users.
        let mut e = Matrix::zeros(n, users.len());
        for (col, &i) in users.iter().enumerate() {
            let mut r = samples[i].clone();
            let approx = dict.synthesize(&codes[i].coefficients);
            for (rj, aj) in r.iter_mut().zip(&approx) {
                *rj -= aj;
            }
            // Add back this atom's own contribution.
            let c = codes[i].coefficients[atom_idx];
            let atom = dict.atom(atom_idx);
            for (rj, dj) in r.iter_mut().zip(&atom) {
                *rj += c * dj;
            }
            e.set_col(col, &r);
        }
        // Rank-1 approximation of E: new atom = u₁, new coeffs = σ₁ v₁.
        let d = svd(&e).expect("non-empty residual matrix");
        if d.singular_values[0] <= 0.0 {
            continue;
        }
        let new_atom = d.u.col(0);
        dict.set_atom(atom_idx, &new_atom);
        for (col, &i) in users.iter().enumerate() {
            codes[i].coefficients[atom_idx] = d.singular_values[0] * d.v.get(col, 0);
        }
    }
}

/// Total squared reconstruction error `Σ_i ‖y_i − D s_i‖²`.
pub fn reconstruction_error(dict: &Dictionary, codes: &[SparseCode], samples: &[Vec<f64>]) -> f64 {
    codes
        .iter()
        .zip(samples)
        .map(|(c, y)| {
            let approx = dict.synthesize(&c.coefficients);
            y.iter()
                .zip(&approx)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sparse_samples(
        dict: &Dictionary,
        m: usize,
        sparsity: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        use rand::Rng;
        (0..m)
            .map(|_| {
                let mut y = vec![0.0; dict.signal_dim()];
                for _ in 0..sparsity {
                    let j = rng.random_range(0..dict.atom_count());
                    let c = rng.random::<f64>() * 2.0 - 1.0;
                    qn_linalg::vector::axpy(c, &dict.atom(j), &mut y);
                }
                y
            })
            .collect()
    }

    #[test]
    fn ksvd_sweep_reduces_reconstruction_error() {
        let mut rng = StdRng::seed_from_u64(11);
        let truth = Dictionary::random(8, 12, &mut rng);
        let samples = sparse_samples(&truth, 30, 2, &mut rng);
        // Start from a different random dictionary.
        let mut dict = Dictionary::random(8, 12, &mut rng);
        let mut codes = omp::batch(&dict, &samples, 2, 1e-12);
        let before = reconstruction_error(&dict, &codes, &samples);
        ksvd_update(&mut dict, &mut codes, &samples);
        let after = reconstruction_error(&dict, &codes, &samples);
        assert!(after < before, "K-SVD increased error: {before} → {after}");
    }

    #[test]
    fn several_sweeps_converge_towards_data() {
        // Note: the OMP re-coding step is greedy, so the *cross-sweep*
        // error is not strictly monotone; assert overall convergence.
        let mut rng = StdRng::seed_from_u64(12);
        let truth = Dictionary::random(6, 8, &mut rng);
        let samples = sparse_samples(&truth, 40, 2, &mut rng);
        let mut dict = Dictionary::random(6, 8, &mut rng);
        let initial = {
            let codes = omp::batch(&dict, &samples, 2, 1e-12);
            reconstruction_error(&dict, &codes, &samples)
        };
        let mut err = initial;
        for _ in 0..10 {
            let mut codes = omp::batch(&dict, &samples, 2, 1e-12);
            ksvd_update(&mut dict, &mut codes, &samples);
            err = reconstruction_error(&dict, &codes, &samples);
        }
        assert!(err < initial * 0.2, "error {initial} → {err}");
        // Mean per-sample error should be small by now.
        assert!(err / 40.0 < 0.05, "residual error {err}");
    }

    #[test]
    fn unused_atoms_are_left_alone() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut dict = Dictionary::random(4, 6, &mut rng);
        let before = dict.atom(5);
        // Codes that never touch atom 5.
        let samples = vec![dict.atom(0), dict.atom(1)];
        let mut codes = omp::batch(&dict, &samples, 1, 1e-12);
        for c in &codes {
            assert_eq!(c.coefficients[5], 0.0);
        }
        ksvd_update(&mut dict, &mut codes, &samples);
        assert_eq!(dict.atom(5), before);
    }

    #[test]
    fn atoms_stay_unit_norm_after_update() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut dict = Dictionary::random(5, 7, &mut rng);
        let samples = sparse_samples(&dict.clone(), 20, 2, &mut rng);
        let mut codes = omp::batch(&dict, &samples, 2, 1e-12);
        ksvd_update(&mut dict, &mut codes, &samples);
        for j in 0..7 {
            let n = qn_linalg::vector::norm2(&dict.atom(j));
            assert!((n - 1.0).abs() < 1e-10, "atom {j} norm {n}");
        }
    }
}
