//! Dictionaries for sparse coding.

use qn_linalg::{vector, Matrix};
use rand::Rng;

/// A dictionary of unit-norm atoms, stored as the columns of an `N × K`
/// matrix (`N` = signal dimension, `K` = atom count; the paper uses a
/// square 16×16 dictionary).
#[derive(Debug, Clone, PartialEq)]
pub struct Dictionary {
    atoms: Matrix,
}

impl Dictionary {
    /// Wrap a matrix as a dictionary, normalising every column to unit
    /// norm (zero columns are replaced by a unit basis vector).
    pub fn from_matrix(mut atoms: Matrix) -> Self {
        let (n, k) = atoms.shape();
        for j in 0..k {
            let mut col = atoms.col(j);
            let norm = vector::normalize(&mut col);
            if norm == 0.0 {
                col = vec![0.0; n];
                col[j % n] = 1.0;
            }
            atoms.set_col(j, &col);
        }
        Dictionary { atoms }
    }

    /// Random Gaussian dictionary with unit-norm atoms.
    pub fn random(n: usize, k: usize, rng: &mut impl Rng) -> Self {
        let m = qn_linalg::random::gaussian_matrix(n, k, rng);
        Dictionary::from_matrix(m)
    }

    /// Initialise from data samples (columns = first `k` samples), the
    /// standard K-SVD warm start. Falls back to random atoms when there
    /// are fewer samples than atoms.
    pub fn from_samples(samples: &[Vec<f64>], k: usize, rng: &mut impl Rng) -> Self {
        let n = samples.first().map_or(0, Vec::len);
        let mut m = qn_linalg::random::gaussian_matrix(n, k, rng);
        for (j, sample) in samples.iter().take(k).enumerate() {
            m.set_col(j, sample);
        }
        Dictionary::from_matrix(m)
    }

    /// Signal dimension `N`.
    pub fn signal_dim(&self) -> usize {
        self.atoms.rows()
    }

    /// Atom count `K`.
    pub fn atom_count(&self) -> usize {
        self.atoms.cols()
    }

    /// Borrow the atom matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.atoms
    }

    /// Replace the atom matrix (columns are re-normalised).
    pub fn set_matrix(&mut self, atoms: Matrix) {
        *self = Dictionary::from_matrix(atoms);
    }

    /// Atom `j` as a vector.
    pub fn atom(&self, j: usize) -> Vec<f64> {
        self.atoms.col(j)
    }

    /// Overwrite atom `j` (normalised).
    pub fn set_atom(&mut self, j: usize, atom: &[f64]) {
        let mut a = atom.to_vec();
        let norm = vector::normalize(&mut a);
        if norm == 0.0 {
            a = vec![0.0; self.signal_dim()];
            a[j % self.signal_dim()] = 1.0;
        }
        self.atoms.set_col(j, &a);
    }

    /// Synthesis: `y = D s`.
    ///
    /// # Panics
    /// Panics when `code.len() != K`.
    pub fn synthesize(&self, code: &[f64]) -> Vec<f64> {
        self.atoms.matvec(code).expect("code length = atom count")
    }

    /// Correlations `Dᵀ r` of a residual with every atom.
    ///
    /// # Panics
    /// Panics when `r.len() != N`.
    pub fn correlations(&self, r: &[f64]) -> Vec<f64> {
        self.atoms
            .matvec_t(r)
            .expect("residual length = signal dim")
    }

    /// Mutual coherence: the largest |inner product| between distinct
    /// atoms (a standard dictionary quality measure).
    pub fn coherence(&self) -> f64 {
        let k = self.atom_count();
        let g = self.atoms.gram();
        let mut max = 0.0_f64;
        for i in 0..k {
            for j in (i + 1)..k {
                max = max.max(g.get(i, j).abs());
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn atoms_are_unit_norm() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dictionary::random(8, 12, &mut rng);
        assert_eq!(d.signal_dim(), 8);
        assert_eq!(d.atom_count(), 12);
        for j in 0..12 {
            assert!((vector::norm2(&d.atom(j)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_columns_are_replaced() {
        let m = Matrix::zeros(4, 4);
        let d = Dictionary::from_matrix(m);
        for j in 0..4 {
            assert!((vector::norm2(&d.atom(j)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn synthesis_combines_atoms() {
        let d = Dictionary::from_matrix(Matrix::identity(3));
        let y = d.synthesize(&[2.0, 0.0, -1.0]);
        assert_eq!(y, vec![2.0, 0.0, -1.0]);
    }

    #[test]
    fn correlations_are_transposed_product() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dictionary::random(4, 6, &mut rng);
        let r = vec![1.0, -0.5, 0.25, 0.0];
        let c = d.correlations(&r);
        for (j, cj) in c.iter().enumerate() {
            let expect = vector::dot(&d.atom(j), &r);
            assert!((cj - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_initialisation_uses_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples = vec![vec![2.0, 0.0, 0.0], vec![0.0, 3.0, 0.0]];
        let d = Dictionary::from_samples(&samples, 4, &mut rng);
        // First atoms are the normalised samples.
        assert!((d.atom(0)[0] - 1.0).abs() < 1e-12);
        assert!((d.atom(1)[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_dictionary_has_zero_coherence() {
        let d = Dictionary::from_matrix(Matrix::identity(5));
        assert!(d.coherence() < 1e-15);
        // Duplicated atom → coherence 1.
        let mut m = Matrix::identity(3);
        m.set_col(2, &[1.0, 0.0, 0.0]);
        let d = Dictionary::from_matrix(m);
        assert!((d.coherence() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_atom_normalises() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Dictionary::random(3, 3, &mut rng);
        d.set_atom(1, &[0.0, 2.0, 0.0]);
        assert_eq!(d.atom(1), vec![0.0, 1.0, 0.0]);
        d.set_atom(2, &[0.0, 0.0, 0.0]); // degenerate → basis vector
        assert!((vector::norm2(&d.atom(2)) - 1.0).abs() < 1e-12);
    }
}
