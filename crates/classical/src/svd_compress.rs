//! Plain low-rank SVD image compression.
//!
//! The simplest classical point of comparison: treat the whole dataset as
//! an `M × N` matrix and keep its top-`r` singular triplets (Eckart–Young
//! optimal). Gives the information-theoretic floor any rank-`r` method —
//! including the quantum network with `d = r` — is bounded by.

use qn_image::GrayImage;
use qn_linalg::svd::svd;
use qn_linalg::{LinalgError, Matrix};

/// Compress a dataset to rank `r` and return the reconstructed images
/// together with the total squared error.
///
/// # Errors
/// Propagates SVD errors (empty input).
pub fn compress_dataset(
    images: &[GrayImage],
    r: usize,
) -> Result<(Vec<GrayImage>, f64), LinalgError> {
    if images.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "svd_compress: empty dataset".into(),
        ));
    }
    let rows: Vec<Vec<f64>> = images.iter().map(|i| i.to_vector()).collect();
    let y = Matrix::from_rows(&rows)?;
    let d = svd(&y)?;
    let approx = d.truncate(r);
    let err = approx.sub(&y)?.data().iter().map(|v| v * v).sum::<f64>();
    let recons = images
        .iter()
        .enumerate()
        .map(|(i, img)| {
            GrayImage::from_pixels(img.width(), img.height(), approx.row(i).to_vec())
                .expect("dimensions preserved")
        })
        .collect();
    Ok((recons, err))
}

/// Squared-error floor for every rank `1..=max_rank` (the singular-value
/// tail sums) — used to plot compressibility curves.
///
/// # Errors
/// Propagates SVD errors.
pub fn error_floor(images: &[GrayImage], max_rank: usize) -> Result<Vec<f64>, LinalgError> {
    if images.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "svd_compress: empty dataset".into(),
        ));
    }
    let rows: Vec<Vec<f64>> = images.iter().map(|i| i.to_vector()).collect();
    let y = Matrix::from_rows(&rows)?;
    let d = svd(&y)?;
    let sq: Vec<f64> = d.singular_values.iter().map(|s| s * s).collect();
    Ok((1..=max_rank).map(|r| sq.iter().skip(r).sum()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_image::datasets;

    #[test]
    fn rank4_dataset_compresses_losslessly_at_rank_4() {
        let data = datasets::paper_binary_16(25);
        let (recons, err) = compress_dataset(&data, 4).unwrap();
        assert!(err < 1e-18, "error {err}");
        assert_eq!(recons.len(), 25);
        for (r, o) in recons.iter().zip(&data) {
            for (a, b) in r.pixels().iter().zip(o.pixels()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn error_decreases_with_rank() {
        let data = datasets::paper_binary_16_hard(25);
        let floors = error_floor(&data, 8).unwrap();
        for w in floors.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // Hard dataset is NOT rank 4.
        assert!(floors[3] > 0.1);
    }

    #[test]
    fn compress_error_matches_floor() {
        let data = datasets::paper_binary_16_hard(25);
        let (_, err) = compress_dataset(&data, 4).unwrap();
        let floors = error_floor(&data, 4).unwrap();
        assert!((err - floors[3]).abs() < 1e-8, "{err} vs {}", floors[3]);
    }

    #[test]
    fn empty_input_errors() {
        assert!(compress_dataset(&[], 2).is_err());
        assert!(error_floor(&[], 2).is_err());
    }
}
