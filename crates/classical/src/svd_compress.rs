//! Plain low-rank SVD image compression.
//!
//! The simplest classical point of comparison: treat the whole dataset as
//! an `M × N` matrix and keep its top-`r` singular triplets (Eckart–Young
//! optimal). Gives the information-theoretic floor any rank-`r` method —
//! including the quantum network with `d = r` — is bounded by.

use qn_image::GrayImage;
use qn_linalg::svd::svd;
use qn_linalg::{LinalgError, Matrix};

/// Compress a dataset to rank `r` and return the reconstructed images
/// together with the total squared error.
///
/// # Errors
/// Propagates SVD errors (empty input).
pub fn compress_dataset(
    images: &[GrayImage],
    r: usize,
) -> Result<(Vec<GrayImage>, f64), LinalgError> {
    if images.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "svd_compress: empty dataset".into(),
        ));
    }
    let rows: Vec<Vec<f64>> = images.iter().map(|i| i.to_vector()).collect();
    let y = Matrix::from_rows(&rows)?;
    let d = svd(&y)?;
    let approx = d.truncate(r);
    let err = approx.sub(&y)?.data().iter().map(|v| v * v).sum::<f64>();
    let recons = images
        .iter()
        .enumerate()
        .map(|(i, img)| {
            GrayImage::from_pixels(img.width(), img.height(), approx.row(i).to_vec())
                .expect("dimensions preserved")
        })
        .collect();
    Ok((recons, err))
}

/// Factor a dataset into its rank-`r` code/basis pair: per-image
/// coefficients `C = U_r Σ_r` (`M × r`) and the shared basis `B = V_rᵀ`
/// (`r × N`), so `C · B` is the Eckart–Young optimal rank-`r`
/// approximation. This is the storage view of SVD compression — an
/// evaluation harness can quantize the `r` coefficients per image and
/// amortize the basis across the dataset, the same accounting the
/// quantum codec's latents-per-tile format uses.
///
/// # Errors
/// Propagates SVD errors; [`LinalgError::InvalidArgument`] for an empty
/// dataset or `r` outside `1..=min(M, N)`.
pub fn factor_dataset(images: &[GrayImage], r: usize) -> Result<(Matrix, Matrix), LinalgError> {
    if images.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "svd_compress: empty dataset".into(),
        ));
    }
    let rows: Vec<Vec<f64>> = images.iter().map(|i| i.to_vector()).collect();
    let y = Matrix::from_rows(&rows)?;
    let (m, n) = y.shape();
    if r == 0 || r > m.min(n) {
        return Err(LinalgError::InvalidArgument(format!(
            "svd_compress: rank {r} out of range for a {m}x{n} dataset"
        )));
    }
    let d = svd(&y)?;
    let mut coeffs = Matrix::zeros(m, r);
    for i in 0..m {
        for j in 0..r {
            coeffs.set(i, j, d.u.get(i, j) * d.singular_values[j]);
        }
    }
    let mut basis = Matrix::zeros(r, n);
    for j in 0..r {
        for k in 0..n {
            basis.set(j, k, d.v.get(k, j));
        }
    }
    Ok((coeffs, basis))
}

/// Squared-error floor for every rank `1..=max_rank` (the singular-value
/// tail sums) — used to plot compressibility curves.
///
/// # Errors
/// Propagates SVD errors.
pub fn error_floor(images: &[GrayImage], max_rank: usize) -> Result<Vec<f64>, LinalgError> {
    if images.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "svd_compress: empty dataset".into(),
        ));
    }
    let rows: Vec<Vec<f64>> = images.iter().map(|i| i.to_vector()).collect();
    let y = Matrix::from_rows(&rows)?;
    let d = svd(&y)?;
    let sq: Vec<f64> = d.singular_values.iter().map(|s| s * s).collect();
    Ok((1..=max_rank).map(|r| sq.iter().skip(r).sum()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_image::datasets;

    #[test]
    fn rank4_dataset_compresses_losslessly_at_rank_4() {
        let data = datasets::paper_binary_16(25);
        let (recons, err) = compress_dataset(&data, 4).unwrap();
        assert!(err < 1e-18, "error {err}");
        assert_eq!(recons.len(), 25);
        for (r, o) in recons.iter().zip(&data) {
            for (a, b) in r.pixels().iter().zip(o.pixels()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn error_decreases_with_rank() {
        let data = datasets::paper_binary_16_hard(25);
        let floors = error_floor(&data, 8).unwrap();
        for w in floors.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // Hard dataset is NOT rank 4.
        assert!(floors[3] > 0.1);
    }

    #[test]
    fn compress_error_matches_floor() {
        let data = datasets::paper_binary_16_hard(25);
        let (_, err) = compress_dataset(&data, 4).unwrap();
        let floors = error_floor(&data, 4).unwrap();
        assert!((err - floors[3]).abs() < 1e-8, "{err} vs {}", floors[3]);
    }

    #[test]
    fn factored_code_basis_product_matches_truncation() {
        let data = datasets::paper_binary_16_hard(25);
        let (coeffs, basis) = factor_dataset(&data, 4).unwrap();
        assert_eq!(coeffs.shape(), (25, 4));
        assert_eq!(basis.shape(), (4, 16));
        // C · B equals the direct rank-4 reconstruction.
        let (recons, _) = compress_dataset(&data, 4).unwrap();
        let product = coeffs.matmul(&basis).unwrap();
        for (i, img) in recons.iter().enumerate() {
            for (j, &p) in img.pixels().iter().enumerate() {
                assert!((product.get(i, j) - p).abs() < 1e-9, "pixel ({i},{j})");
            }
        }
        // Out-of-range ranks are rejected.
        assert!(factor_dataset(&data, 0).is_err());
        assert!(factor_dataset(&data, 17).is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(compress_dataset(&[], 2).is_err());
        assert!(error_floor(&[], 2).is_err());
        assert!(factor_dataset(&[], 2).is_err());
    }
}
