//! PCA compression — the classically-simulable content of the
//! quantum-PCA algorithm the paper cites for comparison (ref [11], Yu et
//! al., "Quantum data compression by principal component analysis").
//!
//! qPCA's output on classical data *is* the principal subspace of the
//! data's covariance/second-moment matrix; this module computes it with
//! the Jacobi eigensolver and offers compress/reconstruct in the same
//! `d`-dimensional regime as the quantum network.

use qn_linalg::sym_eig::sym_eig;
use qn_linalg::{LinalgError, Matrix};

/// A fitted PCA compressor.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Component matrix, `d × N` (rows are principal directions).
    components: Matrix,
    /// Mean vector subtracted before projection.
    mean: Vec<f64>,
    /// Eigenvalues (variances) of the kept components, descending.
    pub explained: Vec<f64>,
    /// Sum of all eigenvalues (total variance).
    pub total_variance: f64,
}

impl Pca {
    /// Fit a `d`-component PCA to the samples.
    ///
    /// # Errors
    /// - [`LinalgError::InvalidArgument`] for an empty batch or `d` larger
    ///   than the dimension.
    /// - Propagates eigensolver failures.
    pub fn fit(samples: &[Vec<f64>], d: usize) -> Result<Self, LinalgError> {
        let m = samples.len();
        if m == 0 {
            return Err(LinalgError::InvalidArgument("pca: empty batch".into()));
        }
        let n = samples[0].len();
        if d == 0 || d > n {
            return Err(LinalgError::InvalidArgument(format!(
                "pca: d={d} out of range for dimension {n}"
            )));
        }
        let mut mean = vec![0.0; n];
        for s in samples {
            for (mi, &si) in mean.iter_mut().zip(s) {
                *mi += si;
            }
        }
        for mi in &mut mean {
            *mi /= m as f64;
        }
        // Covariance (biased; scale does not affect the eigenvectors).
        let mut cov = Matrix::zeros(n, n);
        for s in samples {
            let centred: Vec<f64> = s.iter().zip(&mean).map(|(a, b)| a - b).collect();
            for i in 0..n {
                if centred[i] == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let v = cov.get(i, j) + centred[i] * centred[j] / m as f64;
                    cov.set(i, j, v);
                }
            }
        }
        let eig = sym_eig(&cov)?;
        let mut components = Matrix::zeros(d, n);
        for r in 0..d {
            for c in 0..n {
                components.set(r, c, eig.eigenvectors.get(c, r));
            }
        }
        let total_variance: f64 = eig.eigenvalues.iter().map(|&l| l.max(0.0)).sum();
        Ok(Pca {
            components,
            mean,
            explained: eig.eigenvalues[..d].to_vec(),
            total_variance,
        })
    }

    /// Number of kept components `d`.
    pub fn components(&self) -> usize {
        self.components.rows()
    }

    /// Project a sample to its `d` principal coordinates.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn compress(&self, x: &[f64]) -> Vec<f64> {
        let centred: Vec<f64> = x.iter().zip(&self.mean).map(|(a, b)| a - b).collect();
        self.components
            .matvec(&centred)
            .expect("dimension checked at fit")
    }

    /// Reconstruct from principal coordinates.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn reconstruct(&self, z: &[f64]) -> Vec<f64> {
        let mut x = self
            .components
            .matvec_t(z)
            .expect("dimension checked at fit");
        for (xi, mi) in x.iter_mut().zip(&self.mean) {
            *xi += mi;
        }
        x
    }

    /// Round-trip a sample through compression.
    pub fn roundtrip(&self, x: &[f64]) -> Vec<f64> {
        self.reconstruct(&self.compress(x))
    }

    /// Fraction of variance captured by the kept components.
    pub fn explained_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 1.0;
        }
        self.explained.iter().map(|&l| l.max(0.0)).sum::<f64>() / self.total_variance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Vec<Vec<f64>> {
        // Points on the line (t, 2t, 0) + noise-free: exactly rank 1
        // after centring.
        (0..10)
            .map(|i| {
                let t = i as f64 - 4.5;
                vec![t, 2.0 * t, 0.0]
            })
            .collect()
    }

    #[test]
    fn fit_validates_arguments() {
        assert!(Pca::fit(&[], 1).is_err());
        assert!(Pca::fit(&line_data(), 0).is_err());
        assert!(Pca::fit(&line_data(), 4).is_err());
    }

    #[test]
    fn rank1_data_is_perfectly_reconstructed_with_one_component() {
        let data = line_data();
        let pca = Pca::fit(&data, 1).unwrap();
        assert!((pca.explained_ratio() - 1.0).abs() < 1e-10);
        for x in &data {
            let back = pca.roundtrip(x);
            for (a, b) in back.iter().zip(x) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn first_component_is_dominant_direction() {
        let pca = Pca::fit(&line_data(), 1).unwrap();
        let c = pca.components.row(0);
        // Direction ∝ (1, 2, 0)/√5.
        let expect = [1.0 / 5.0_f64.sqrt(), 2.0 / 5.0_f64.sqrt(), 0.0];
        let align: f64 = c.iter().zip(&expect).map(|(a, b)| a * b).sum();
        assert!(align.abs() > 0.999, "alignment {align}");
    }

    #[test]
    fn more_components_reconstruct_better() {
        let data: Vec<Vec<f64>> = (0..12)
            .map(|i| (0..6).map(|j| ((i * 6 + j) as f64 * 0.7).sin()).collect())
            .collect();
        let mut prev = f64::INFINITY;
        for d in 1..=4 {
            let pca = Pca::fit(&data, d).unwrap();
            let err: f64 = data
                .iter()
                .map(|x| {
                    let back = pca.roundtrip(x);
                    x.iter()
                        .zip(&back)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                })
                .sum();
            assert!(err <= prev + 1e-10, "d={d}: {err} > {prev}");
            prev = err;
        }
    }

    #[test]
    fn compress_has_d_coordinates() {
        let data = line_data();
        let pca = Pca::fit(&data, 2).unwrap();
        assert_eq!(pca.components(), 2);
        assert_eq!(pca.compress(&data[0]).len(), 2);
        assert_eq!(pca.reconstruct(&[0.0, 0.0]).len(), 3);
    }
}
