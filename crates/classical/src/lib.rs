//! Classical baselines the paper compares against.
//!
//! Sec. IV-C compares the quantum network against a classical sparse
//! coding (CSC) pipeline "based on the SVD algorithms" (ref [23]) with a
//! 16×16 dictionary: inputs are expressed as `y = D s` with a learned
//! dictionary `D` and sparse codes `s`. This crate implements that whole
//! stack from scratch on top of `qn-linalg`:
//!
//! - [`dictionary`] — dictionary containers and initialisation;
//! - [`mp`] / [`omp`] — matching pursuit and orthogonal matching pursuit
//!   sparse coders;
//! - [`ista`] — ISTA/FISTA ℓ₁ sparse coders;
//! - [`ksvd`] — K-SVD dictionary updates (the SVD-based learning of the
//!   paper's reference);
//! - [`mod_update`] — MOD (method of optimal directions) updates;
//! - [`csc`] — the full training pipeline with loss/time tracking, i.e.
//!   the baseline column of Table I and the CSC curve of Fig. 5c;
//! - [`pca`] — PCA compression (the classically-simulable content of the
//!   quantum-PCA comparison the paper cites as ref [11]);
//! - [`svd_compress`] — plain low-rank SVD image compression.

pub mod csc;
pub mod dictionary;
pub mod ista;
pub mod ksvd;
pub mod mod_update;
pub mod mp;
pub mod omp;
pub mod pca;
pub mod svd_compress;

pub use csc::{CscConfig, CscPipeline, CscReport};
pub use dictionary::Dictionary;
