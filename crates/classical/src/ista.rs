//! ISTA / FISTA — proximal-gradient ℓ₁ sparse coding.
//!
//! Solves `min_s ½‖y − D s‖² + λ‖s‖₁` by iterative soft thresholding;
//! FISTA adds Nesterov momentum. These are the convex alternatives to the
//! greedy pursuits and are exercised by the coder ablation.

use crate::dictionary::Dictionary;
use qn_linalg::svd::spectral_norm;
use qn_linalg::vector;

/// Soft-thresholding operator `sign(x)·max(|x|−t, 0)`.
#[inline]
pub fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Result of an ISTA/FISTA solve.
#[derive(Debug, Clone)]
pub struct IstaResult {
    /// Final coefficient vector.
    pub coefficients: Vec<f64>,
    /// Objective value `½‖y − Ds‖² + λ‖s‖₁` per iteration.
    pub objective: Vec<f64>,
}

fn objective(dict: &Dictionary, y: &[f64], s: &[f64], lambda: f64) -> f64 {
    let approx = dict.synthesize(s);
    let r2: f64 = y.iter().zip(&approx).map(|(a, b)| (a - b) * (a - b)).sum();
    0.5 * r2 + lambda * vector::norm1(s)
}

/// Plain ISTA with step `1/L`, `L = σ_max(D)²`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn ista(dict: &Dictionary, y: &[f64], lambda: f64, iterations: usize) -> IstaResult {
    assert_eq!(y.len(), dict.signal_dim(), "ista: dimension mismatch");
    let l = spectral_norm(dict.matrix())
        .expect("non-empty dictionary")
        .powi(2)
        .max(1e-12);
    let step = 1.0 / l;
    let k = dict.atom_count();
    let mut s = vec![0.0; k];
    let mut history = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        history.push(objective(dict, y, &s, lambda));
        // Gradient of the smooth part: Dᵀ(Ds − y).
        let approx = dict.synthesize(&s);
        let r: Vec<f64> = approx.iter().zip(y).map(|(a, b)| a - b).collect();
        let grad = dict.correlations(&r);
        for (si, g) in s.iter_mut().zip(&grad) {
            *si = soft_threshold(*si - step * g, step * lambda);
        }
    }
    IstaResult {
        coefficients: s,
        objective: history,
    }
}

/// FISTA (accelerated ISTA).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn fista(dict: &Dictionary, y: &[f64], lambda: f64, iterations: usize) -> IstaResult {
    assert_eq!(y.len(), dict.signal_dim(), "fista: dimension mismatch");
    let l = spectral_norm(dict.matrix())
        .expect("non-empty dictionary")
        .powi(2)
        .max(1e-12);
    let step = 1.0 / l;
    let k = dict.atom_count();
    let mut s = vec![0.0; k];
    let mut z = s.clone();
    let mut t = 1.0_f64;
    let mut history = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        history.push(objective(dict, y, &s, lambda));
        let approx = dict.synthesize(&z);
        let r: Vec<f64> = approx.iter().zip(y).map(|(a, b)| a - b).collect();
        let grad = dict.correlations(&r);
        let s_next: Vec<f64> = z
            .iter()
            .zip(&grad)
            .map(|(zi, g)| soft_threshold(zi - step * g, step * lambda))
            .collect();
        let t_next = (1.0 + (1.0 + 4.0 * t * t).sqrt()) / 2.0;
        let momentum = (t - 1.0) / t_next;
        z = s_next
            .iter()
            .zip(&s)
            .map(|(sn, so)| sn + momentum * (sn - so))
            .collect();
        s = s_next;
        t = t_next;
    }
    IstaResult {
        coefficients: s,
        objective: history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(1.0, 1.0), 0.0);
    }

    #[test]
    fn ista_on_identity_dictionary_soft_thresholds() {
        // With D = I the exact solution is soft_threshold(y, λ).
        let d = Dictionary::from_matrix(Matrix::identity(4));
        let y = [2.0, -0.3, 0.8, -1.5];
        let r = ista(&d, &y, 0.5, 400);
        for (si, yi) in r.coefficients.iter().zip(&y) {
            assert!((si - soft_threshold(*yi, 0.5)).abs() < 1e-6, "{si} vs {yi}");
        }
    }

    #[test]
    fn objective_decreases_monotonically_for_ista() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Dictionary::random(6, 10, &mut rng);
        let y: Vec<f64> = (0..6).map(|i| ((i as f64) * 0.8).sin()).collect();
        let r = ista(&d, &y, 0.05, 100);
        for w in r.objective.windows(2) {
            assert!(w[1] <= w[0] + 1e-10);
        }
    }

    #[test]
    fn fista_converges_at_least_as_fast_as_ista() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Dictionary::random(8, 16, &mut rng);
        let y: Vec<f64> = (0..8).map(|i| ((i * i) as f64 * 0.17).cos()).collect();
        let iters = 150;
        let oi = ista(&d, &y, 0.02, iters).objective;
        let of = fista(&d, &y, 0.02, iters).objective;
        assert!(
            *of.last().unwrap() <= oi.last().unwrap() + 1e-9,
            "fista {} vs ista {}",
            of.last().unwrap(),
            oi.last().unwrap()
        );
    }

    #[test]
    fn larger_lambda_gives_sparser_codes() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = Dictionary::random(8, 12, &mut rng);
        let y: Vec<f64> = (0..8).map(|i| ((i as f64) * 1.1).sin()).collect();
        let sparse = fista(&d, &y, 0.5, 300).coefficients;
        let dense = fista(&d, &y, 0.001, 300).coefficients;
        let nnz = |s: &[f64]| s.iter().filter(|&&c| c.abs() > 1e-9).count();
        assert!(nnz(&sparse) <= nnz(&dense));
    }
}
