//! The CSC baseline pipeline of the paper's Sec. IV-C / Table I / Fig. 5.
//!
//! "In the CSC, we can use a sparse coding vector s and a dictionary D to
//! express the input y, denoted as y = Ds"; the dictionary is 16×16 and
//! learning is SVD-based (ref [23]). The pipeline alternates sparse
//! coding (OMP with `sparsity` atoms — matched to the quantum network's
//! `d` compression channels) and a dictionary update (K-SVD by default,
//! MOD as ablation), recording the per-iteration training loss and total
//! wall-clock time so the comparison rows of Table I can be regenerated.

use crate::dictionary::Dictionary;
use crate::ista;
use crate::ksvd::{ksvd_update, reconstruction_error};
use crate::mod_update::mod_update;
use crate::mp::{self, SparseCode};
use crate::omp;
use qn_image::{metrics, GrayImage};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Dictionary-update algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictUpdate {
    /// K-SVD per-atom rank-1 updates (the paper's SVD-based reference).
    Ksvd,
    /// MOD global least-squares update.
    Mod,
}

/// Sparse-coder selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparseCoder {
    /// FISTA ℓ₁ coding with the given λ and inner-iteration budget — the
    /// faithful model of the paper's reference [23] (an LCA/memristive
    /// sparse-coding network solves exactly this LASSO objective, soft
    /// thresholding included). The shrinkage bias keeps the training loss
    /// strictly positive, which is what Fig. 5c shows for CSC. Default.
    Fista {
        /// ℓ₁ weight λ.
        lambda: f64,
        /// Inner proximal-gradient iterations per sample per epoch.
        inner_iterations: usize,
    },
    /// Orthogonal matching pursuit with the configured sparsity — a
    /// *stronger* coder than the paper's; exercised by the strong-baseline
    /// ablation.
    Omp,
    /// Plain matching pursuit.
    Mp,
}

/// Configuration of the CSC baseline.
#[derive(Debug, Clone)]
pub struct CscConfig {
    /// Number of dictionary atoms `K` (paper: 16, square dictionary).
    pub atoms: usize,
    /// Atoms per code — the sparsity budget (matched to the QN's d = 4).
    pub sparsity: usize,
    /// Sparse-coding algorithm.
    pub coder: SparseCoder,
    /// Training iterations (matched to the QN's 150).
    pub iterations: usize,
    /// Dictionary-update algorithm.
    pub update: DictUpdate,
    /// RNG seed for dictionary initialisation.
    pub seed: u64,
    /// Accuracy tolerance of Eq. 10.
    pub accuracy_tol: f64,
}

impl CscConfig {
    /// The paper's comparison setting: 16×16 dictionary, sparsity 4,
    /// 150 iterations, K-SVD updates.
    pub fn paper_default() -> Self {
        CscConfig {
            atoms: 16,
            sparsity: 4,
            coder: SparseCoder::Fista {
                lambda: 0.05,
                inner_iterations: 150,
            },
            iterations: 150,
            update: DictUpdate::Ksvd,
            seed: 7,
            accuracy_tol: 0.01,
        }
    }
}

/// Outcome of a CSC training run.
#[derive(Debug, Clone)]
pub struct CscReport {
    /// Total squared training loss `Σ_i ‖y_i − D s_i‖²` per iteration
    /// (the CSC curve of Fig. 5c).
    pub loss: Vec<f64>,
    /// Per-element mean loss per iteration (comparable to the QN's
    /// mean-normalised `L_C`).
    pub loss_mean: Vec<f64>,
    /// Eq. 10 accuracy (%) of snapped reconstructions, per iteration.
    pub accuracy: Vec<f64>,
    /// Accuracy (%) after binary thresholding at 0.5 (§IV-B rule), per
    /// iteration.
    pub accuracy_binary: Vec<f64>,
    /// Best accuracy over training (Table I's accuracy row).
    pub max_accuracy: f64,
    /// Best binary-threshold accuracy over training.
    pub max_accuracy_binary: f64,
    /// Wall-clock seconds (Table I's "CPU runs" row).
    pub train_seconds: f64,
    /// Dictionary size as "K×N" (Table I's "matrix size" row).
    pub matrix_size: String,
}

/// The trainable CSC pipeline.
pub struct CscPipeline {
    config: CscConfig,
    dict: Dictionary,
    images: Vec<GrayImage>,
    samples: Vec<Vec<f64>>,
}

impl CscPipeline {
    /// Initialise from an image set (vectors are the raw pixel vectors;
    /// unlike the quantum pipeline no normalisation is needed).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn new(config: CscConfig, images: &[GrayImage]) -> Self {
        assert!(!images.is_empty(), "csc: empty dataset");
        let samples: Vec<Vec<f64>> = images.iter().map(|i| i.to_vector()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dict = Dictionary::from_samples(&samples, config.atoms, &mut rng);
        CscPipeline {
            config,
            dict,
            images: images.to_vec(),
            samples,
        }
    }

    /// Borrow the current dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Sparse-code the whole dataset with the configured coder.
    fn code_batch(&self) -> Vec<SparseCode> {
        match self.config.coder {
            SparseCoder::Omp => omp::batch(&self.dict, &self.samples, self.config.sparsity, 1e-12),
            SparseCoder::Mp => self
                .samples
                .iter()
                .map(|y| mp::matching_pursuit(&self.dict, y, self.config.sparsity, 1e-12))
                .collect(),
            SparseCoder::Fista {
                lambda,
                inner_iterations,
            } => qn_linalg::parallel::par_map_indexed(self.samples.len(), |i| {
                let r = ista::fista(&self.dict, &self.samples[i], lambda, inner_iterations);
                let approx = self.dict.synthesize(&r.coefficients);
                let residual: Vec<f64> = self.samples[i]
                    .iter()
                    .zip(&approx)
                    .map(|(a, b)| a - b)
                    .collect();
                SparseCode {
                    coefficients: r.coefficients,
                    residual_norm: qn_linalg::vector::norm2(&residual),
                }
            }),
        }
    }

    /// Train: alternate sparse coding and dictionary updates, recording
    /// loss/accuracy per iteration and the total wall time.
    pub fn train(&mut self) -> CscReport {
        let start = Instant::now();
        let m = self.samples.len();
        let n = self.dict.signal_dim();
        let mut loss = Vec::with_capacity(self.config.iterations);
        let mut accuracy = Vec::with_capacity(self.config.iterations);
        let mut accuracy_binary = Vec::with_capacity(self.config.iterations);
        for _ in 0..self.config.iterations {
            let mut codes = self.code_batch();
            loss.push(reconstruction_error(&self.dict, &codes, &self.samples));
            let (snap, binary) = self.evaluate_accuracy(&codes);
            accuracy.push(snap);
            accuracy_binary.push(binary);
            match self.config.update {
                DictUpdate::Ksvd => ksvd_update(&mut self.dict, &mut codes, &self.samples),
                DictUpdate::Mod => mod_update(&mut self.dict, &codes, &self.samples),
            }
        }
        let max_accuracy = accuracy.iter().copied().fold(0.0, f64::max);
        let max_accuracy_binary = accuracy_binary.iter().copied().fold(0.0, f64::max);
        CscReport {
            loss_mean: loss.iter().map(|l| l / (m * n) as f64).collect(),
            loss,
            accuracy,
            accuracy_binary,
            max_accuracy,
            max_accuracy_binary,
            train_seconds: start.elapsed().as_secs_f64(),
            matrix_size: format!("{}x{}", self.dict.signal_dim(), self.dict.atom_count()),
        }
    }

    /// Reconstruct every image with the current dictionary and codes.
    pub fn reconstruct_images(&self) -> Vec<GrayImage> {
        let codes = self.code_batch();
        codes
            .iter()
            .zip(&self.images)
            .map(|(c, img)| {
                let y = self.dict.synthesize(&c.coefficients);
                GrayImage::from_pixels(img.width(), img.height(), y).expect("dimensions preserved")
            })
            .collect()
    }

    /// Returns `(snap accuracy, binary-threshold accuracy)`.
    fn evaluate_accuracy(&self, codes: &[crate::mp::SparseCode]) -> (f64, f64) {
        let decoded: Vec<GrayImage> = codes
            .iter()
            .zip(&self.images)
            .map(|(c, img)| {
                let y = self.dict.synthesize(&c.coefficients);
                GrayImage::from_pixels(img.width(), img.height(), y).expect("dimensions preserved")
            })
            .collect();
        let snapped: Vec<GrayImage> = decoded.iter().map(GrayImage::snapped).collect();
        let binarised: Vec<GrayImage> = decoded.iter().map(|d| d.thresholded(0.5)).collect();
        (
            metrics::mean_pixel_accuracy(&snapped, &self.images, self.config.accuracy_tol),
            metrics::mean_pixel_accuracy(&binarised, &self.images, self.config.accuracy_tol),
        )
    }

    /// Binary-threshold accuracy of the current model (§IV-B rule).
    pub fn binary_accuracy(&self) -> f64 {
        let recons: Vec<GrayImage> = self
            .reconstruct_images()
            .iter()
            .map(|r| r.thresholded(0.5))
            .collect();
        metrics::mean_pixel_accuracy(&recons, &self.images, self.config.accuracy_tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_image::datasets;

    fn quick_config() -> CscConfig {
        CscConfig {
            iterations: 20,
            // OMP keeps the quick tests crisp; the FISTA default is
            // exercised by `fista_coder_plateaus_above_zero`.
            coder: SparseCoder::Omp,
            ..CscConfig::paper_default()
        }
    }

    #[test]
    fn paper_default_matches_table_i_setting() {
        let c = CscConfig::paper_default();
        assert_eq!(c.atoms, 16);
        assert_eq!(c.iterations, 150);
        assert_eq!(c.sparsity, 4);
    }

    #[test]
    fn training_reduces_loss_on_paper_data() {
        let data = datasets::paper_binary_16(25);
        let mut p = CscPipeline::new(quick_config(), &data);
        let report = p.train();
        assert_eq!(report.loss.len(), 20);
        let first = report.loss[0];
        let last = *report.loss.last().unwrap();
        assert!(last <= first, "loss grew: {first} → {last}");
        assert_eq!(report.matrix_size, "16x16");
        assert!(report.train_seconds > 0.0);
        // Mean normalisation is consistent.
        assert!((report.loss_mean[0] - first / 400.0).abs() < 1e-12);
    }

    #[test]
    fn rank4_data_is_reconstructed_well() {
        // 25 samples of exactly rank 4 with sparsity 4 and a 16-atom
        // dictionary: K-SVD should drive the loss near zero.
        let data = datasets::low_rank_binary(25, 4, 4, 4, 31);
        let mut p = CscPipeline::new(quick_config(), &data);
        let report = p.train();
        let last = *report.loss.last().unwrap();
        assert!(last < 0.5, "final loss {last}");
        assert!(p.binary_accuracy() > 90.0);
    }

    #[test]
    fn reconstructions_have_image_dimensions() {
        let data = datasets::paper_binary_16(10);
        let p = CscPipeline::new(quick_config(), &data);
        let recons = p.reconstruct_images();
        assert_eq!(recons.len(), 10);
        assert!(recons.iter().all(|r| r.width() == 4 && r.height() == 4));
    }

    #[test]
    fn mod_update_variant_trains_too() {
        let data = datasets::paper_binary_16(15);
        let mut cfg = quick_config();
        cfg.update = DictUpdate::Mod;
        let mut p = CscPipeline::new(cfg, &data);
        let report = p.train();
        assert!(report.loss.last().unwrap() <= &report.loss[0]);
    }

    #[test]
    fn fista_coder_plateaus_above_zero() {
        // The ℓ₁ shrinkage bias keeps the training loss strictly positive
        // even on exactly rank-4 data — the CSC behaviour of Fig. 5c.
        let data = datasets::paper_binary_16(25);
        let cfg = CscConfig {
            iterations: 15,
            ..CscConfig::paper_default()
        };
        let mut p = CscPipeline::new(cfg, &data);
        let report = p.train();
        let last = *report.loss.last().unwrap();
        assert!(
            last > 1e-3,
            "shrinkage bias should keep loss positive: {last}"
        );
        assert!(last < report.loss[0] * 2.0 + 1.0, "loss exploded: {last}");
        assert_eq!(report.accuracy_binary.len(), 15);
    }

    #[test]
    fn training_is_deterministic() {
        let data = datasets::paper_binary_16(12);
        let r1 = CscPipeline::new(quick_config(), &data).train();
        let r2 = CscPipeline::new(quick_config(), &data).train();
        assert_eq!(r1.loss, r2.loss);
        assert_eq!(r1.accuracy, r2.accuracy);
    }
}
