//! Orthogonal matching pursuit (OMP).
//!
//! Like MP, but after every atom selection the coefficients of the whole
//! active set are re-fit by least squares, so the residual stays
//! orthogonal to the selected subspace. This is the sparse coder the CSC
//! baseline uses by default.

use crate::dictionary::Dictionary;
use crate::mp::SparseCode;
use qn_linalg::lstsq::lstsq_svd;
use qn_linalg::{vector, Matrix};

/// Orthogonal matching pursuit: select up to `max_atoms` atoms, re-fitting
/// the active coefficients after each selection; stops early when the
/// residual norm falls below `tol`.
///
/// # Panics
/// Panics when `y.len()` differs from the dictionary's signal dimension.
pub fn orthogonal_matching_pursuit(
    dict: &Dictionary,
    y: &[f64],
    max_atoms: usize,
    tol: f64,
) -> SparseCode {
    assert_eq!(y.len(), dict.signal_dim(), "omp: signal dimension mismatch");
    let n = dict.signal_dim();
    let mut residual = y.to_vec();
    let mut support: Vec<usize> = Vec::new();
    let mut coeffs_on_support: Vec<f64> = Vec::new();

    for _ in 0..max_atoms.min(dict.atom_count()) {
        if vector::norm2(&residual) <= tol {
            break;
        }
        let corr = dict.correlations(&residual);
        // Best atom not already selected.
        let best = corr
            .iter()
            .enumerate()
            .filter(|(j, _)| !support.contains(j))
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map(|(j, &c)| (j, c));
        let Some((best, c)) = best else { break };
        if c == 0.0 {
            break;
        }
        support.push(best);

        // Least-squares refit on the active set.
        let mut sub = Matrix::zeros(n, support.len());
        for (col, &j) in support.iter().enumerate() {
            sub.set_col(col, &dict.atom(j));
        }
        coeffs_on_support = lstsq_svd(&sub, y, 1e-12).expect("non-empty subdictionary");

        // Residual = y − D_S s_S.
        let approx = sub
            .matvec(&coeffs_on_support)
            .expect("shape by construction");
        residual = y.iter().zip(&approx).map(|(a, b)| a - b).collect();
    }

    let mut coefficients = vec![0.0; dict.atom_count()];
    for (&j, &c) in support.iter().zip(&coeffs_on_support) {
        coefficients[j] = c;
    }
    SparseCode {
        residual_norm: vector::norm2(&residual),
        coefficients,
    }
}

/// Code a whole batch (returns one [`SparseCode`] per sample).
pub fn batch(dict: &Dictionary, ys: &[Vec<f64>], max_atoms: usize, tol: f64) -> Vec<SparseCode> {
    qn_linalg::parallel::par_map_indexed(ys.len(), |i| {
        orthogonal_matching_pursuit(dict, &ys[i], max_atoms, tol)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_recovery_of_sparse_combination() {
        // y = 2·d₀ − 3·d₄ over a random dictionary: OMP with 2 atoms must
        // recover it exactly (incoherent Gaussian atoms).
        let mut rng = StdRng::seed_from_u64(5);
        let dict = Dictionary::random(10, 16, &mut rng);
        let mut y = vec![0.0; 10];
        vector::axpy(2.0, &dict.atom(0), &mut y);
        vector::axpy(-3.0, &dict.atom(4), &mut y);
        let code = orthogonal_matching_pursuit(&dict, &y, 2, 1e-12);
        assert!(code.residual_norm < 1e-10);
        assert!((code.coefficients[0] - 2.0).abs() < 1e-10);
        assert!((code.coefficients[4] + 3.0).abs() < 1e-10);
        assert_eq!(code.sparsity(), 2);
    }

    #[test]
    fn omp_beats_mp_on_correlated_atoms() {
        // Build a coherent dictionary where plain MP needs more atoms.
        let mut rng = StdRng::seed_from_u64(6);
        let dict = Dictionary::random(8, 20, &mut rng);
        let y: Vec<f64> = (0..8).map(|i| ((i as f64) * 0.9).cos()).collect();
        let budget = 4;
        let omp = orthogonal_matching_pursuit(&dict, &y, budget, 0.0);
        let mp = crate::mp::matching_pursuit(&dict, &y, budget, 0.0);
        assert!(
            omp.residual_norm <= mp.residual_norm + 1e-12,
            "omp {} vs mp {}",
            omp.residual_norm,
            mp.residual_norm
        );
    }

    #[test]
    fn residual_is_orthogonal_to_selected_atoms() {
        let mut rng = StdRng::seed_from_u64(7);
        let dict = Dictionary::random(6, 12, &mut rng);
        let y: Vec<f64> = (0..6).map(|i| (i as f64 + 1.0).recip()).collect();
        let code = orthogonal_matching_pursuit(&dict, &y, 3, 0.0);
        let approx = dict.synthesize(&code.coefficients);
        let r: Vec<f64> = y.iter().zip(&approx).map(|(a, b)| a - b).collect();
        for j in code.support() {
            let ip = vector::dot(&dict.atom(j), &r);
            assert!(ip.abs() < 1e-10, "atom {j}: ⟨d, r⟩ = {ip}");
        }
    }

    #[test]
    fn full_budget_over_square_dictionary_is_exact() {
        let mut rng = StdRng::seed_from_u64(8);
        let dict = Dictionary::random(6, 6, &mut rng);
        let y: Vec<f64> = (0..6).map(|i| (i as f64 * 1.3).sin()).collect();
        let code = orthogonal_matching_pursuit(&dict, &y, 6, 1e-14);
        assert!(code.residual_norm < 1e-8, "residual {}", code.residual_norm);
    }

    #[test]
    fn batch_matches_individual() {
        let mut rng = StdRng::seed_from_u64(9);
        let dict = Dictionary::random(5, 8, &mut rng);
        let ys: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..5).map(|j| ((i + j) as f64).sin()).collect())
            .collect();
        let b = batch(&dict, &ys, 3, 1e-12);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(b[i], orthogonal_matching_pursuit(&dict, y, 3, 1e-12));
        }
    }

    #[test]
    fn zero_signal_terminates_immediately() {
        let mut rng = StdRng::seed_from_u64(10);
        let dict = Dictionary::random(4, 6, &mut rng);
        let code = orthogonal_matching_pursuit(&dict, &[0.0; 4], 3, 1e-12);
        assert_eq!(code.sparsity(), 0);
    }
}
