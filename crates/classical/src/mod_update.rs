//! MOD — Method of Optimal Directions dictionary update.
//!
//! Given fixed sparse codes `S`, the dictionary minimising `‖Y − D S‖_F`
//! is the least-squares solution `D = Y S⁺`, computed here via the SVD
//! pseudo-inverse. Simpler than K-SVD (one global solve instead of
//! per-atom rank-1 updates); exercised by the dictionary-update ablation.

use crate::dictionary::Dictionary;
use crate::mp::SparseCode;
use qn_linalg::lstsq::lstsq_svd_matrix;
use qn_linalg::Matrix;

/// One MOD update: replace the whole dictionary with `Y S⁺`
/// (columns re-normalised).
///
/// # Panics
/// Panics on shape mismatches.
pub fn mod_update(dict: &mut Dictionary, codes: &[SparseCode], samples: &[Vec<f64>]) {
    assert_eq!(codes.len(), samples.len(), "mod: batch sizes differ");
    let n = dict.signal_dim();
    let k = dict.atom_count();
    let m = samples.len();
    if m == 0 {
        return;
    }
    // Y: n × m, S: k × m. Want D (n × k) minimising ‖Y − D S‖_F, i.e.
    // Dᵀ solves min ‖Sᵀ Dᵀ − Yᵀ‖_F.
    let mut st = Matrix::zeros(m, k); // Sᵀ
    let mut yt = Matrix::zeros(m, n); // Yᵀ
    for (i, (c, y)) in codes.iter().zip(samples).enumerate() {
        st.set_row(i, &c.coefficients);
        yt.set_row(i, y);
    }
    let dt = lstsq_svd_matrix(&st, &yt, 1e-10).expect("shapes verified");
    dict.set_matrix(dt.transpose());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ksvd::reconstruction_error;
    use crate::omp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mod_recovers_dictionary_from_exact_codes() {
        // Y = D_true S with known S: MOD must recover D_true (up to
        // column scaling, which normalisation fixes).
        let mut rng = StdRng::seed_from_u64(20);
        let truth = Dictionary::random(6, 4, &mut rng);
        use rand::Rng;
        let m = 30;
        let codes: Vec<SparseCode> = (0..m)
            .map(|_| {
                let mut c = vec![0.0; 4];
                for ci in c.iter_mut() {
                    *ci = rng.random::<f64>() * 2.0 - 1.0;
                }
                SparseCode {
                    coefficients: c,
                    residual_norm: 0.0,
                }
            })
            .collect();
        let samples: Vec<Vec<f64>> = codes
            .iter()
            .map(|c| truth.synthesize(&c.coefficients))
            .collect();
        let mut dict = Dictionary::random(6, 4, &mut rng);
        mod_update(&mut dict, &codes, &samples);
        // After the update the reconstruction error with the *same* codes
        // should be ~0 ... but the normalisation rescales columns, so
        // measure the subspace agreement per atom instead.
        for j in 0..4 {
            let a = dict.atom(j);
            let b = truth.atom(j);
            let ip: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(ip.abs() > 0.999, "atom {j} alignment {ip}");
        }
    }

    #[test]
    fn mod_reduces_error_in_alternating_loop() {
        let mut rng = StdRng::seed_from_u64(21);
        let truth = Dictionary::random(8, 10, &mut rng);
        use rand::Rng;
        let samples: Vec<Vec<f64>> = (0..40)
            .map(|_| {
                let mut y = vec![0.0; 8];
                for _ in 0..2 {
                    let j = rng.random_range(0..10);
                    qn_linalg::vector::axpy(rng.random::<f64>() - 0.5, &truth.atom(j), &mut y);
                }
                y
            })
            .collect();
        let mut dict = Dictionary::random(8, 10, &mut rng);
        let mut prev = f64::INFINITY;
        for _ in 0..8 {
            let codes = omp::batch(&dict, &samples, 2, 1e-12);
            mod_update(&mut dict, &codes, &samples);
            let codes2 = omp::batch(&dict, &samples, 2, 1e-12);
            let err = reconstruction_error(&dict, &codes2, &samples);
            assert!(err <= prev * 1.5 + 1e-9, "error grew a lot: {prev} → {err}");
            prev = err;
        }
        assert!(prev / 40.0 < 0.05, "final mean error {}", prev / 40.0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut dict = Dictionary::random(4, 4, &mut rng);
        let before = dict.clone();
        mod_update(&mut dict, &[], &[]);
        assert_eq!(dict, before);
    }
}
