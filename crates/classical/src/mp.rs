//! Matching pursuit (MP).
//!
//! The greedy baseline coder: repeatedly pick the atom most correlated
//! with the residual and subtract its projection. Cheaper but weaker than
//! [`crate::omp`]; included because the paper's reference list leans on
//! pursuit methods (refs [1], [16]).

use crate::dictionary::Dictionary;
use qn_linalg::vector;

/// Result of a pursuit: the sparse code and the final residual norm.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCode {
    /// Dense coefficient vector (length `K`, mostly zeros).
    pub coefficients: Vec<f64>,
    /// `‖y − D s‖₂` at termination.
    pub residual_norm: f64,
}

impl SparseCode {
    /// Number of non-zero coefficients.
    pub fn sparsity(&self) -> usize {
        self.coefficients.iter().filter(|&&c| c != 0.0).count()
    }

    /// Indices of non-zero coefficients.
    pub fn support(&self) -> Vec<usize> {
        self.coefficients
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c != 0.0).then_some(i))
            .collect()
    }
}

/// Matching pursuit: greedily select up to `max_atoms` atoms, stopping
/// early when the residual norm falls below `tol`.
///
/// # Panics
/// Panics when `y.len()` differs from the dictionary's signal dimension.
pub fn matching_pursuit(dict: &Dictionary, y: &[f64], max_atoms: usize, tol: f64) -> SparseCode {
    assert_eq!(y.len(), dict.signal_dim(), "mp: signal dimension mismatch");
    let mut residual = y.to_vec();
    let mut coefficients = vec![0.0; dict.atom_count()];
    for _ in 0..max_atoms {
        let norm = vector::norm2(&residual);
        if norm <= tol {
            break;
        }
        let corr = dict.correlations(&residual);
        let Some((best, c)) = vector::argmax_abs(&corr) else {
            break;
        };
        if c == 0.0 {
            break;
        }
        // Atoms are unit norm, so the projection coefficient is c itself.
        coefficients[best] += c;
        vector::axpy(-c, &dict.atom(best), &mut residual);
    }
    SparseCode {
        residual_norm: vector::norm2(&residual),
        coefficients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_dict(n: usize) -> Dictionary {
        Dictionary::from_matrix(Matrix::identity(n))
    }

    #[test]
    fn recovers_sparse_signal_over_identity_dictionary() {
        let d = identity_dict(5);
        let y = vec![0.0, 3.0, 0.0, -2.0, 0.0];
        let code = matching_pursuit(&d, &y, 5, 1e-12);
        assert!((code.coefficients[1] - 3.0).abs() < 1e-12);
        assert!((code.coefficients[3] + 2.0).abs() < 1e-12);
        assert_eq!(code.sparsity(), 2);
        assert!(code.residual_norm < 1e-12);
        assert_eq!(code.support(), vec![1, 3]);
    }

    #[test]
    fn respects_atom_budget() {
        let d = identity_dict(4);
        let y = vec![1.0, 1.0, 1.0, 1.0];
        let code = matching_pursuit(&d, &y, 2, 0.0);
        assert_eq!(code.sparsity(), 2);
        assert!((code.residual_norm - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stops_when_tolerance_reached() {
        let d = identity_dict(3);
        let y = vec![1.0, 0.1, 0.0];
        let code = matching_pursuit(&d, &y, 3, 0.5);
        // After extracting the big coefficient the residual is 0.1 < 0.5.
        assert_eq!(code.sparsity(), 1);
    }

    #[test]
    fn zero_signal_gives_empty_code() {
        let d = identity_dict(3);
        let code = matching_pursuit(&d, &[0.0; 3], 3, 1e-12);
        assert_eq!(code.sparsity(), 0);
        assert_eq!(code.residual_norm, 0.0);
    }

    #[test]
    fn reduces_residual_monotonically_on_random_dictionary() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = Dictionary::random(6, 10, &mut rng);
        let y: Vec<f64> = (0..6).map(|i| ((i * i) as f64 * 0.3).sin()).collect();
        let mut prev = vector::norm2(&y);
        for budget in 1..=6 {
            let code = matching_pursuit(&d, &y, budget, 0.0);
            assert!(code.residual_norm <= prev + 1e-12);
            prev = code.residual_norm;
        }
    }
}
