//! Cross-method consistency: the quantum network, PCA, the SVD floor and
//! the spectral bound must all agree where theory says they coincide.

use qn::classical::csc::{CscConfig, CscPipeline, SparseCoder};
use qn::classical::pca::Pca;
use qn::classical::svd_compress;
use qn::core::config::NetworkConfig;
use qn::core::trainer::Trainer;
use qn::core::{encoding, spectral};
use qn::image::datasets;

#[test]
fn trained_qn_reaches_the_pca_bound() {
    // The trash-penalty optimum is the PCA subspace: after training, L_C
    // (sum) must be within a few percent of the spectral bound.
    let data = datasets::paper_binary_16_hard(25);
    let inputs: Vec<Vec<f64>> = encoding::encode_images(&data, 16)
        .expect("encodes")
        .into_iter()
        .map(|e| e.amplitudes)
        .collect();
    let bound = spectral::compression_loss_lower_bound(&inputs, 16, 4).expect("bound");
    assert!(bound > 0.0);

    let mut trainer =
        Trainer::new(NetworkConfig::paper_default(), &data).expect("valid configuration");
    let report = trainer.train().expect("training runs");
    let achieved = report.history.compression_loss.last().unwrap().sum;
    assert!(
        achieved <= bound * 1.05 + 1e-9,
        "L_C {achieved} vs bound {bound}"
    );
    // And never below it (it is a true lower bound).
    assert!(
        achieved >= bound - 1e-9,
        "L_C {achieved} broke the bound {bound}"
    );
}

#[test]
fn svd_floor_equals_spectral_bound_on_encoded_scale() {
    // The SVD tail of the *encoded* (unit-norm) data matrix equals the
    // compression-loss lower bound — two independent code paths.
    let data = datasets::paper_binary_16_hard(25);
    let encoded = encoding::encode_images(&data, 16).expect("encodes");
    let inputs: Vec<Vec<f64>> = encoded.iter().map(|e| e.amplitudes.clone()).collect();
    let bound = spectral::compression_loss_lower_bound(&inputs, 16, 4).expect("bound");

    let rows: Vec<Vec<f64>> = inputs.clone();
    let m = qn::linalg::Matrix::from_rows(&rows).expect("uniform rows");
    let svd = qn::linalg::svd::svd(&m).expect("svd");
    let tail: f64 = svd.singular_values.iter().skip(4).map(|s| s * s).sum();
    assert!((tail - bound).abs() < 1e-9, "tail {tail} vs bound {bound}");
}

#[test]
fn pca_and_qn_agree_on_rank4_data() {
    // On exactly-rank-4 data both PCA (d=4) and the trained QN
    // reconstruct perfectly (after thresholding).
    let data = datasets::paper_binary_16(25);
    let samples: Vec<Vec<f64>> = data.iter().map(|i| i.to_vector()).collect();
    let pca = Pca::fit(&samples, 4).expect("pca fits");
    for x in &samples {
        let back = pca.roundtrip(x);
        for (a, b) in back.iter().zip(x) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    let mut trainer = Trainer::new(NetworkConfig::paper_default().with_iterations(150), &data)
        .expect("valid configuration");
    let report = trainer.train().expect("training runs");
    assert!(report.max_accuracy_binary >= 99.9);
}

#[test]
fn csc_with_omp_matches_svd_floor_on_rank4_data() {
    // A 16-atom dictionary with sparsity 4 can represent rank-4 data
    // exactly; the trained CSC loss must approach the (zero) SVD floor.
    let data = datasets::paper_binary_16(25);
    let cfg = CscConfig {
        iterations: 30,
        coder: SparseCoder::Omp,
        ..CscConfig::paper_default()
    };
    let mut p = CscPipeline::new(cfg, &data);
    let report = p.train();
    let (_, floor) = svd_compress::compress_dataset(&data, 4).expect("svd runs");
    assert!(floor < 1e-12);
    assert!(
        *report.loss.last().unwrap() < 1e-6,
        "CSC loss {}",
        report.loss.last().unwrap()
    );
}

#[test]
fn l1_csc_is_biased_above_the_floor() {
    // The FISTA coder's shrinkage keeps its loss strictly above the
    // (zero) floor on the same data — the Fig. 5c separation.
    let data = datasets::paper_binary_16(25);
    let cfg = CscConfig {
        iterations: 20,
        ..CscConfig::paper_default() // FISTA default
    };
    let mut p = CscPipeline::new(cfg, &data);
    let report = p.train();
    assert!(
        *report.loss.last().unwrap() > 1e-3,
        "ℓ₁ bias vanished: {}",
        report.loss.last().unwrap()
    );
}

#[test]
fn spectral_init_is_optimal_from_iteration_zero() {
    use qn::core::config::InitStrategy;
    let data = datasets::paper_binary_16_hard(25);
    let inputs: Vec<Vec<f64>> = encoding::encode_images(&data, 16)
        .expect("encodes")
        .into_iter()
        .map(|e| e.amplitudes)
        .collect();
    let bound = spectral::compression_loss_lower_bound(&inputs, 16, 4).expect("bound");
    let cfg = NetworkConfig::paper_default()
        .with_init(InitStrategy::Spectral)
        .with_iterations(1);
    let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
    let report = trainer.train().expect("training runs");
    let first = report.history.compression_loss[0].sum;
    assert!(
        (first - bound).abs() < 1e-6,
        "spectral start {first} vs bound {bound}"
    );
}
