//! Golden bitstream vectors: checked-in `.qnm`/`.qnc` fixtures under
//! `tests/vectors/` whose parse, decode and re-encode behaviour is
//! pinned byte-for-byte. Any change to the container layout, the
//! entropy coder, the quantizers, the model format or a mesh execution
//! backend that shifts even one bit of output fails here loudly —
//! format compatibility can only move with a deliberate version bump
//! and regenerated fixtures (`cargo run --example gen_golden_vectors`).

use qn::backend::BackendKind;
use qn::codec::{
    bitstream, container, decode_standalone, model, Codec, CodecOptions, EntropyCoder,
};
use qn::image::{metrics, pgm, GrayImage};
use std::path::PathBuf;

// Pinned constants, printed by `examples/gen_golden_vectors.rs`.
const MODEL_ID: u64 = 0xbc71c2dfcda332b1;
const QNC_LEN: usize = 276;
const SCALED_LEN: usize = 372;
const INLINE_LEN: usize = 2248;
const RICEPOS_LEN: usize = 182;
const RANGE_LEN: usize = 232;
const PSNR_DB: f64 = 47.168873;
const PIXEL_HASH: u64 = 0xde8d991e6aae57c1;

fn vector_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/vectors")
        .join(name)
}

fn vector_bytes(name: &str) -> Vec<u8> {
    std::fs::read(vector_path(name)).unwrap_or_else(|e| panic!("reading fixture {name}: {e}"))
}

fn golden_codec() -> Codec {
    Codec::from_model_file(&vector_path("golden_24x16_d8.qnm")).expect("load golden model")
}

fn golden_image() -> GrayImage {
    pgm::read_pgm(&vector_path("golden_24x16.pgm")).expect("read golden image")
}

/// The quantized pixels a decode must reproduce exactly.
fn pixel_hash(img: &GrayImage) -> u64 {
    let quantized: Vec<u8> = img
        .clamped()
        .pixels()
        .iter()
        .map(|p| (p * 255.0).round() as u8)
        .collect();
    bitstream::fnv1a64(&quantized)
}

#[test]
fn golden_model_loads_and_reencodes_bit_exact() {
    let bytes = vector_bytes("golden_24x16_d8.qnm");
    let loaded = model::decode_model(&bytes).expect("golden model must parse");
    assert_eq!(model::model_id(&loaded), MODEL_ID, "model identity drifted");
    assert_eq!(
        model::encode_model(&loaded),
        bytes,
        "model re-encode is no longer bit-exact"
    );
    assert_eq!(loaded.dim(), 16);
    assert_eq!(loaded.compression.compressed_dim(), 8);
}

#[test]
fn golden_containers_parse_and_reserialize_byte_exact() {
    for (name, len, per_tile_scale, inline) in [
        ("golden_24x16_d8.qnc", QNC_LEN, false, false),
        ("golden_24x16_d8_scaled.qnc", SCALED_LEN, true, false),
        ("golden_24x16_d8_inline.qnc", INLINE_LEN, false, true),
    ] {
        let bytes = vector_bytes(name);
        assert_eq!(bytes.len(), len, "{name}: container size drifted");
        let parsed = container::Container::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{name} must parse: {e}"));
        let h = &parsed.header;
        assert_eq!(
            (
                h.model_id,
                h.width,
                h.height,
                h.tile_size,
                h.latent_dim,
                h.bits
            ),
            (MODEL_ID, 24, 16, 4, 8, 8),
            "{name}: header drifted"
        );
        assert_eq!(h.per_tile_scale(), per_tile_scale, "{name}");
        assert_eq!(h.inline_model(), inline, "{name}");
        assert_eq!(
            parsed.to_bytes().expect("reserialize"),
            bytes,
            "{name}: reserialization is no longer byte-exact"
        );
    }
}

#[test]
fn golden_decode_is_pinned_on_every_backend() {
    let codec = golden_codec();
    let original = golden_image();
    let bytes = vector_bytes("golden_24x16_d8.qnc");
    for backend in BackendKind::ALL {
        let back = codec
            .decode_bytes_with(&bytes, backend)
            .unwrap_or_else(|e| panic!("{backend} decode: {e}"));
        assert_eq!(
            pixel_hash(&back),
            PIXEL_HASH,
            "{backend}: decoded pixels drifted from the golden payload"
        );
        let psnr = metrics::psnr(&original, &back.clamped());
        assert!(
            (psnr - PSNR_DB).abs() < 1e-3,
            "{backend}: PSNR drifted from {PSNR_DB:.6} dB to {psnr:.6} dB"
        );
    }
}

#[test]
fn golden_reencode_reproduces_container_bytes_on_every_backend() {
    let codec = golden_codec();
    let img = golden_image();
    for backend in BackendKind::ALL {
        for (name, per_tile_scale) in [
            ("golden_24x16_d8.qnc", false),
            ("golden_24x16_d8_scaled.qnc", true),
        ] {
            let opts = CodecOptions {
                inline_model: false,
                per_tile_scale,
                backend,
                ..CodecOptions::default()
            };
            let bytes = codec.encode_image(&img, &opts).expect("encode");
            assert_eq!(
                bytes,
                vector_bytes(name),
                "{backend}: re-encoding {name} is no longer byte-identical"
            );
        }
    }
}

#[test]
fn v2_golden_containers_parse_and_reserialize_byte_exact() {
    for (name, len, coder, version) in [
        (
            "golden_24x16_d8_ricepos.qnc",
            RICEPOS_LEN,
            EntropyCoder::RicePos,
            2u16,
        ),
        (
            "golden_24x16_d8_range.qnc",
            RANGE_LEN,
            EntropyCoder::Range,
            2,
        ),
    ] {
        let bytes = vector_bytes(name);
        assert_eq!(bytes.len(), len, "{name}: container size drifted");
        let parsed = container::Container::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{name} must parse: {e}"));
        assert_eq!(parsed.header.version, version, "{name}");
        assert_eq!(parsed.header.entropy().unwrap(), coder, "{name}");
        assert_eq!(parsed.header.model_id, MODEL_ID, "{name}");
        assert_eq!(
            parsed.to_bytes().expect("reserialize"),
            bytes,
            "{name}: reserialization is no longer byte-exact"
        );
        // The v2 parse must agree tile-for-tile with the v1 fixture:
        // entropy coding is lossless re the quantized levels.
        let v1 = container::Container::from_bytes(&vector_bytes("golden_24x16_d8.qnc")).unwrap();
        assert_eq!(parsed.tiles, v1.tiles, "{name}: tile payloads drifted");
    }
    // The v2 fixtures pin the rate win itself: both coders beat the
    // v1 rice container on the golden image.
    let v1_len = vector_bytes("golden_24x16_d8.qnc").len();
    assert!(vector_bytes("golden_24x16_d8_ricepos.qnc").len() < v1_len);
    assert!(vector_bytes("golden_24x16_d8_range.qnc").len() < v1_len);
}

#[test]
fn v2_golden_decode_is_pinned_on_every_backend() {
    let codec = golden_codec();
    for name in ["golden_24x16_d8_ricepos.qnc", "golden_24x16_d8_range.qnc"] {
        let bytes = vector_bytes(name);
        for backend in BackendKind::ALL {
            let back = codec
                .decode_bytes_with(&bytes, backend)
                .unwrap_or_else(|e| panic!("{name} on {backend}: {e}"));
            assert_eq!(
                pixel_hash(&back),
                PIXEL_HASH,
                "{name} on {backend}: v2 decode drifted from the v1 golden pixels"
            );
        }
    }
}

#[test]
fn v2_golden_reencode_reproduces_container_bytes_on_every_backend() {
    let codec = golden_codec();
    let img = golden_image();
    for backend in BackendKind::ALL {
        for (name, entropy) in [
            ("golden_24x16_d8_ricepos.qnc", EntropyCoder::RicePos),
            ("golden_24x16_d8_range.qnc", EntropyCoder::Range),
        ] {
            let opts = CodecOptions {
                inline_model: false,
                entropy,
                backend,
                ..CodecOptions::default()
            };
            let bytes = codec.encode_image(&img, &opts).expect("encode");
            assert_eq!(
                bytes,
                vector_bytes(name),
                "{backend}: re-encoding {name} is no longer byte-identical"
            );
        }
    }
}

#[test]
fn golden_inline_container_decodes_standalone() {
    let bytes = vector_bytes("golden_24x16_d8_inline.qnc");
    let standalone = decode_standalone(&bytes).expect("standalone decode");
    assert_eq!(pixel_hash(&standalone), PIXEL_HASH);
    // The inline model is bit-identical to the .qnm fixture.
    let parsed = container::Container::from_bytes(&bytes).expect("parse");
    assert_eq!(
        parsed.inline_model.as_deref(),
        Some(vector_bytes("golden_24x16_d8.qnm").as_slice()),
        "inline model bytes diverged from the .qnm fixture"
    );
}
