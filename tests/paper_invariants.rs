//! Checks that the implementation matches the paper's stated structure,
//! equation by equation.

use qn::core::compression::CompressionNetwork;
use qn::core::config::{CompressionTargetKind, NetworkConfig, SubspaceKind};
use qn::core::encoding;
use qn::core::trainer::Trainer;
use qn::image::datasets;
use qn::photonic::Mesh;
use qn::sim::{qubits_for_dim, Projector};

#[test]
fn eq1_encoding_normalises_by_root_sum_of_squares() {
    // A_i^j = x_i^j / √(Σ_j (x_i^j)²)
    let x = [2.0, 0.0, 1.0, 2.0];
    let e = encoding::encode(&x, 4).expect("encodes");
    let norm = (4.0 + 0.0 + 1.0 + 4.0_f64).sqrt();
    for (a, xi) in e.amplitudes.iter().zip(&x) {
        assert!((a - xi / norm).abs() < 1e-15);
    }
    assert!((e.norm - norm).abs() < 1e-15);
}

#[test]
fn eq2_decoding_multiplies_amplitude_magnitude_by_retained_norm() {
    // x̂_i^j = √((B_i^j)² Σ_j (x_i^j)²)
    let decoded = encoding::decode(&[0.5, -0.5, 0.0], 2.0, 3);
    assert_eq!(decoded, vec![1.0, 1.0, 0.0]);
}

#[test]
fn qubit_counts_match_section_ii_a() {
    // "if the data is in 16 dimensions (N = 16), four qubits are needed"
    assert_eq!(qubits_for_dim(16), 4);
    // "for 8-dimensional data using 3 qubits"
    assert_eq!(qubits_for_dim(8), 3);
}

#[test]
fn paper_network_sizes_match_section_iv_a() {
    // "only 12×15 parameters are required to train in the compression
    // network, and 14×15 parameters are involved in the reconstruction
    // network"
    let data = datasets::paper_binary_16(25);
    let trainer = Trainer::new(NetworkConfig::paper_default(), &data).expect("valid configuration");
    assert_eq!(trainer.compression().mesh().param_count(), 12 * 15);
    assert_eq!(trainer.reconstruction().mesh().param_count(), 14 * 15);
    // "the number of single-layer quantum gates U is N − 1"
    assert_eq!(trainer.compression().mesh().layers()[0].gate_count(), 15);
}

#[test]
fn projection_follows_the_papers_8dim_example() {
    // (b_i)² = [0,0,0,0,0.25,0.25,0.25,0.25]: last-4 subspace of 8 dims.
    let p = Projector::keep_last(8, 4).expect("valid projector");
    assert_eq!(p.kept_indices(), vec![4, 5, 6, 7]);
    // P1 + P0 = I (Fig. 2).
    let p0 = p.complement();
    let sum: Vec<f64> = p
        .to_diagonal()
        .iter()
        .zip(&p0.to_diagonal())
        .map(|(a, b)| a + b)
        .collect();
    assert!(sum.iter().all(|&v| v == 1.0));
}

#[test]
fn uniform_target_amplitudes_match_the_papers_numbers() {
    // The paper's example target has probability 0.25 on each of the 4
    // kept dimensions, i.e. amplitude 1/√4 = 0.5.
    let mesh = Mesh::zeros(8, 1);
    let net = CompressionNetwork::new(
        mesh,
        4,
        SubspaceKind::KeepLast,
        CompressionTargetKind::Uniform,
    )
    .expect("valid network");
    let out = vec![0.0; 8];
    let mut r = vec![0.0; 8];
    net.residual(0, &out, &mut r);
    for rj in &r[4..8] {
        assert!((rj + 0.5).abs() < 1e-15, "amplitude target must be 0.5");
    }
}

#[test]
fn gate_is_a_real_rotation_with_cos_theta_reflectivity() {
    // Fig. 2: U(k,k+1) with α = 0 is [[cosθ, −sinθ], [sinθ, cosθ]].
    let theta = 0.7_f64;
    let bs = qn::photonic::BeamSplitter::real(0, theta);
    let b = bs.block();
    assert!((b[0][0].re - theta.cos()).abs() < 1e-15);
    assert!((b[0][1].re + theta.sin()).abs() < 1e-15);
    assert!((b[1][0].re - theta.sin()).abs() < 1e-15);
    assert!((b[1][1].re - theta.cos()).abs() < 1e-15);
    assert!((bs.reflectivity() - theta.cos()).abs() < 1e-15);
    assert_eq!(b[0][0].im, 0.0);
}

#[test]
fn reconstruction_initialised_as_reversed_compression_inverts_it() {
    // Sec. II-C: U_R = U_C⁻¹ "only when the error of the compressed
    // network is tiny" — at init (before projection) the reversed network
    // must invert exactly.
    let data = datasets::paper_binary_16(25);
    let trainer = Trainer::new(NetworkConfig::paper_default(), &data).expect("valid configuration");
    let enc = encoding::encode_images(&data, 16).expect("encodes");
    for e in enc.iter().take(5) {
        let forward = trainer.compression().forward(&e.amplitudes);
        let back = trainer.reconstruction().reconstruct(&forward);
        for (a, b) in back.iter().zip(&e.amplitudes) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn accuracy_definition_matches_eq_10() {
    // S = S_p / D² × 100 with |x̂ − x| ≤ 0.01 counting as similar.
    use qn::image::{metrics, GrayImage};
    let target = GrayImage::from_pixels(4, 1, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
    let recon = GrayImage::from_pixels(4, 1, vec![0.009, 0.991, 0.5, 0.02]).unwrap();
    // positions 0, 1 similar (within 0.01); 2, 3 not.
    assert!((metrics::pixel_accuracy(&recon, &target, 0.01) - 50.0).abs() < 1e-12);
}

#[test]
fn theta_stays_finite_and_gradients_vanish_at_convergence() {
    // Fig. 4g: "the update gradient of θ decrease to 0 and the θ
    // stabilize" — final gradient norm must be far below the initial.
    let data = datasets::paper_binary_16(25);
    let cfg = NetworkConfig::paper_default().with_iterations(200);
    let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
    let report = trainer.train().expect("training runs");
    let h = &report.history;
    let g0 = h.grad_norm_c[0];
    let g_end = *h.grad_norm_c.last().unwrap();
    assert!(g_end < g0 * 0.1, "gradient norm {g0} → {g_end}");
    // The gradient shrinks because the loss itself is near zero.
    assert!(h.compression_loss.last().unwrap().sum < 1e-3);
    assert!(h
        .theta_c_trace
        .last()
        .unwrap()
        .iter()
        .all(|t| t.is_finite()));
}
