//! Property tests for the entropy-coder layer of the `.qnc` bitstream:
//! every coder (rice / rice-pos / range) must round-trip arbitrary
//! symbol content exactly, the coders must agree tile-for-tile (they
//! are lossless re-encodings of the same levels), and on PCA-ordered
//! synthetic latents — the data the codec actually produces — the
//! per-position coder must never spend more than the per-tile one.

use proptest::prelude::*;
use qn::codec::container::{
    Container, ContainerHeader, TilePayload, FLAG_ENTROPY_RANGE, FLAG_ENTROPY_RICE_POS,
    FLAG_PER_TILE_SCALE,
};
use qn::codec::EntropyCoder;

/// Small deterministic generator for the per-case payload content
/// (levels, norms, occupancy) — keeps the strategy tuple flat.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A structurally valid container with arbitrary payload content.
fn arbitrary_container(
    seed: u64,
    tiles_x: usize,
    tiles_y: usize,
    latent_dim: usize,
    bits: u8,
    per_tile_scale: bool,
) -> Container {
    let mut mix = Mix(seed);
    let levels = 1u64 << bits;
    let header = ContainerHeader {
        version: 1,
        flags: if per_tile_scale {
            FLAG_PER_TILE_SCALE
        } else {
            0
        },
        model_id: mix.next(),
        width: (tiles_x * 4) as u32,
        height: (tiles_y * 4) as u32,
        tile_size: 4,
        latent_dim: latent_dim as u16,
        bits,
        max_norm: 4.0,
    };
    let tiles = (0..tiles_x * tiles_y)
        .map(|_| {
            if mix.below(4) == 0 {
                return None;
            }
            Some(TilePayload {
                norm_q: mix.below(65536) as u16,
                scale: per_tile_scale.then(|| 0.001 + (mix.below(1000) as f32) / 100.0),
                levels: (0..latent_dim).map(|_| mix.below(levels) as u32).collect(),
            })
        })
        .collect();
    Container {
        header,
        inline_model: None,
        tiles,
    }
}

/// Rewrite a container's header for the given coder.
fn as_coder(mut c: Container, coder: EntropyCoder) -> Container {
    c.header.version = coder.container_version();
    c.header.flags &= !(FLAG_ENTROPY_RICE_POS | FLAG_ENTROPY_RANGE);
    c.header.flags |= coder.container_flags();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Arbitrary symbol streams encode→decode identically through
    // every coder, and re-serialisation is byte-stable.
    #[test]
    fn every_coder_roundtrips_arbitrary_containers(
        (seed, tiles_x, tiles_y) in (0u64..1_000_000, 1usize..5, 1usize..4),
        latent_dim in 1usize..70,
        bits in 1u8..17,
    ) {
        let per_tile_scale = seed % 2 == 0;
        let base = arbitrary_container(seed, tiles_x, tiles_y, latent_dim, bits, per_tile_scale);
        let mut tile_views = Vec::new();
        for coder in EntropyCoder::ALL {
            let c = as_coder(base.clone(), coder);
            let bytes = c.to_bytes().unwrap();
            let back = Container::from_bytes(&bytes).unwrap();
            prop_assert_eq!(&back, &c, "{} roundtrip", coder);
            prop_assert_eq!(back.to_bytes().unwrap(), bytes, "{} reserialize", coder);
            tile_views.push(back.tiles);
        }
        // Lossless re-encodings: every coder carries identical tiles.
        prop_assert_eq!(&tile_views[0], &tile_views[1]);
        prop_assert_eq!(&tile_views[0], &tile_views[2]);
    }

    // On PCA-ordered synthetic latents — per-position magnitudes
    // decaying, smooth norms, the statistics the spectral codec
    // emits — rice-pos never spends more than v1 rice.
    #[test]
    fn rice_pos_never_loses_on_pca_ordered_latents(
        (seed, tiles_x, tiles_y) in (0u64..1_000_000, 3usize..7, 3usize..7),
        latent_dim in 2usize..16,
    ) {
        let bits = 8u8;
        let mut mix = Mix(seed);
        let zero = 128i64; // 8-bit quantizer zero level
        let header = ContainerHeader {
            version: 1,
            flags: 0,
            model_id: 1,
            width: (tiles_x * 4) as u32,
            height: (tiles_y * 4) as u32,
            tile_size: 4,
            latent_dim: latent_dim as u16,
            bits,
            max_norm: 4.0,
        };
        // Position-decaying amplitudes with ±25 % per-tile variation,
        // norms drifting slowly below the max-norm tile.
        let mut norm = 65535i64;
        let tiles: Vec<Option<TilePayload>> = (0..tiles_x * tiles_y)
            .map(|_| {
                norm = (norm - mix.below(4000) as i64 + mix.below(3000) as i64).clamp(0, 65535);
                let levels = (0..latent_dim)
                    .map(|j| {
                        let peak = 110.0 * 0.55f64.powi(j as i32);
                        let amp = peak * (0.75 + mix.below(50) as f64 / 100.0);
                        let signed = if mix.below(2) == 0 { amp } else { -amp };
                        (zero + signed.round() as i64).clamp(0, 255) as u32
                    })
                    .collect();
                Some(TilePayload { norm_q: norm as u16, scale: None, levels })
            })
            .collect();
        let base = Container { header, inline_model: None, tiles };
        let rice = as_coder(base.clone(), EntropyCoder::Rice).to_bytes().unwrap();
        let rice_pos = as_coder(base, EntropyCoder::RicePos).to_bytes().unwrap();
        prop_assert!(
            rice_pos.len() <= rice.len(),
            "rice-pos {} bytes > rice {} bytes on PCA-ordered latents",
            rice_pos.len(),
            rice.len()
        );
    }
}

/// The deterministic shim has no shrinking, so pin one readable
/// example of the headline claim outside the property macro: on the
/// codec's own output (not synthetic symbols), both v2 coders beat v1
/// on a real multi-tile image.
#[test]
fn v2_beats_v1_on_a_real_encode() {
    use qn::codec::{Codec, CodecOptions};
    use qn::image::datasets;
    let img = datasets::grayscale_blobs(1, 48, 48, 7).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    let size = |entropy| {
        let opts = CodecOptions {
            inline_model: false,
            entropy,
            ..CodecOptions::default()
        };
        codec.encode_image(&img, &opts).unwrap().len()
    };
    let rice = size(EntropyCoder::Rice);
    let rice_pos = size(EntropyCoder::RicePos);
    let range = size(EntropyCoder::Range);
    assert!(rice_pos < rice, "rice-pos {rice_pos} vs rice {rice}");
    assert!(range < rice, "range {range} vs rice {rice}");
}
