//! Decoder-robustness corpus: a table of truncations and targeted
//! corruptions of a valid `.qnc`, each driven through every decode
//! entry point (`Container::from_bytes`, `Codec::decode_bytes_with` on
//! every backend, `decode_standalone`). Structural damage must surface
//! as a **typed** [`CodecError`] — never a panic, never an unbounded
//! allocation. Mutations re-fix the trailing CRC-32 where noted so the
//! corruption reaches field validation instead of stopping at the
//! checksum.

use qn::backend::BackendKind;
use qn::codec::{
    bitstream, container, decode_standalone, Codec, CodecError, CodecOptions, EntropyCoder,
};
use qn::image::datasets;

/// A valid container (inline model, per-tile scales) plus its codec.
fn valid_fixture() -> (Codec, Vec<u8>) {
    valid_fixture_with(EntropyCoder::Rice)
}

/// Like [`valid_fixture`], through the chosen entropy coder.
fn valid_fixture_with(entropy: EntropyCoder) -> (Codec, Vec<u8>) {
    let img = datasets::grayscale_blobs(1, 16, 16, 99).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).expect("spectral model");
    let opts = CodecOptions {
        per_tile_scale: true,
        entropy,
        ..CodecOptions::default()
    };
    let bytes = codec.encode_image(&img, &opts).expect("encode");
    (codec, bytes)
}

/// Recompute the trailing CRC-32 so a header/body mutation parses past
/// the checksum gate.
fn refix_crc(bytes: &mut [u8]) {
    let body = bytes.len() - 4;
    let crc = bitstream::crc32(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&crc);
}

/// What a corrupted input is allowed to do.
enum Expect {
    /// Must fail with a typed error satisfying the predicate.
    Err(fn(&CodecError) -> bool),
    /// Must not panic; either a typed error or a structurally valid
    /// decode of garbage is acceptable (the CRC was deliberately
    /// re-fixed, so the bytes are "authentic" as far as the format can
    /// tell).
    NoPanic,
    /// The container parses (the damage is inside the opaque inline
    /// model blob), but the standalone decode must fail typed.
    StandaloneErr,
}

fn is_truncated(e: &CodecError) -> bool {
    matches!(e, CodecError::Truncated { .. })
}

fn is_invalid(e: &CodecError) -> bool {
    matches!(e, CodecError::Invalid(_))
}

fn any_typed(_: &CodecError) -> bool {
    true
}

#[test]
fn corrupted_containers_fail_typed_on_every_entry_point() {
    let (codec, valid) = valid_fixture();
    let n = valid.len();
    type Mutation = Box<dyn Fn(&mut Vec<u8>)>;
    let corpus: Vec<(&str, Mutation, Expect)> = vec![
        (
            "empty input",
            Box::new(|b: &mut Vec<u8>| b.clear()),
            Expect::Err(is_truncated),
        ),
        (
            "three bytes",
            Box::new(|b: &mut Vec<u8>| b.truncate(3)),
            Expect::Err(is_truncated),
        ),
        (
            "header cut mid-field",
            Box::new(|b: &mut Vec<u8>| b.truncate(21)),
            Expect::Err(is_truncated),
        ),
        (
            "last byte missing",
            Box::new(move |b: &mut Vec<u8>| b.truncate(n - 1)),
            Expect::Err(any_typed),
        ),
        (
            "wrong magic",
            Box::new(|b: &mut Vec<u8>| {
                b[..4].copy_from_slice(b"JUNK");
                refix_crc(b);
            }),
            Expect::Err(|e| matches!(e, CodecError::BadMagic { .. })),
        ),
        (
            "future format version",
            Box::new(|b: &mut Vec<u8>| {
                b[4..6].copy_from_slice(&99u16.to_le_bytes());
                refix_crc(b);
            }),
            Expect::Err(|e| matches!(e, CodecError::UnsupportedVersion { .. })),
        ),
        (
            "unknown flag bits",
            Box::new(|b: &mut Vec<u8>| {
                b[6..8].copy_from_slice(&0x8003u16.to_le_bytes());
                refix_crc(b);
            }),
            Expect::Err(is_invalid),
        ),
        (
            "zero width",
            Box::new(|b: &mut Vec<u8>| {
                b[16..20].copy_from_slice(&0u32.to_le_bytes());
                refix_crc(b);
            }),
            Expect::Err(is_invalid),
        ),
        (
            "gigapixel tile-grid bomb",
            Box::new(|b: &mut Vec<u8>| {
                // ~2^60 implied tiles: must be rejected before the tile
                // vector is allocated.
                b[16..20].copy_from_slice(&(1u32 << 30).to_le_bytes());
                b[20..24].copy_from_slice(&(1u32 << 30).to_le_bytes());
                b[24..26].copy_from_slice(&1u16.to_le_bytes());
                refix_crc(b);
            }),
            Expect::Err(is_invalid),
        ),
        (
            "zero tile size",
            Box::new(|b: &mut Vec<u8>| {
                b[24..26].copy_from_slice(&0u16.to_le_bytes());
                refix_crc(b);
            }),
            Expect::Err(is_invalid),
        ),
        (
            "zero latent dimension",
            Box::new(|b: &mut Vec<u8>| {
                b[26..28].copy_from_slice(&0u16.to_le_bytes());
                refix_crc(b);
            }),
            Expect::Err(is_invalid),
        ),
        (
            "bit depth above the 16-bit maximum",
            Box::new(|b: &mut Vec<u8>| {
                b[28] = 200;
                refix_crc(b);
            }),
            Expect::Err(is_invalid),
        ),
        (
            "non-zero reserved bytes survive (format tolerance)",
            Box::new(|b: &mut Vec<u8>| {
                // Reserved bytes are read, not validated — this is the
                // documented expansion space, so decode must still work.
                b[29] = 0xFF;
                refix_crc(b);
            }),
            Expect::NoPanic,
        ),
        (
            "NaN max norm",
            Box::new(|b: &mut Vec<u8>| {
                b[32..36].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
                refix_crc(b);
            }),
            Expect::Err(is_invalid),
        ),
        (
            "negative max norm",
            Box::new(|b: &mut Vec<u8>| {
                b[32..36].copy_from_slice(&(-1.0f32).to_bits().to_le_bytes());
                refix_crc(b);
            }),
            Expect::Err(is_invalid),
        ),
        (
            "4 GiB inline-model length bomb",
            Box::new(|b: &mut Vec<u8>| {
                // Inline-model length field sits right after the fixed
                // header: claiming ~4 GiB must error before allocating.
                b[36..40].copy_from_slice(&u32::MAX.to_le_bytes());
                refix_crc(b);
            }),
            Expect::Err(is_truncated),
        ),
        (
            "inline model zeroed",
            Box::new(|b: &mut Vec<u8>| {
                for v in &mut b[44..200] {
                    *v = 0;
                }
                refix_crc(b);
            }),
            Expect::StandaloneErr,
        ),
        (
            "payload bit flips",
            Box::new(move |b: &mut Vec<u8>| {
                // Flip bits inside the entropy-coded payload; with the
                // CRC re-fixed the stream may decode to garbage or hit
                // a typed error — it must never panic.
                for off in [n - 12, n - 24, n - 40] {
                    b[off] ^= 0x41;
                }
                refix_crc(b);
            }),
            Expect::NoPanic,
        ),
        (
            "payload truncated with length field patched",
            Box::new(move |b: &mut Vec<u8>| {
                // Shorten the payload but leave its length field: the
                // mismatch must be caught structurally.
                b.truncate(n - 16);
                refix_crc(b);
            }),
            Expect::Err(is_invalid),
        ),
        (
            "CRC itself flipped",
            Box::new(move |b: &mut Vec<u8>| {
                let last = b.len() - 1;
                b[last] ^= 0xFF;
            }),
            Expect::Err(|e| matches!(e, CodecError::ChecksumMismatch { .. })),
        ),
    ];

    for (name, mutate, expect) in &corpus {
        let mut bytes = valid.clone();
        mutate(&mut bytes);
        // Entry point 1: the container parser.
        let parsed = container::Container::from_bytes(&bytes);
        // Entry points 2 & 3: full decodes (model-bound on every
        // backend, and standalone via the inline model).
        let standalone = decode_standalone(&bytes);
        let backend_decodes: Vec<qn::codec::Result<_>> = BackendKind::ALL
            .iter()
            .map(|&k| codec.decode_bytes_with(&bytes, k))
            .collect();
        match expect {
            Expect::Err(pred) => {
                let err = parsed
                    .err()
                    .unwrap_or_else(|| panic!("{name}: container parse must fail"));
                assert!(pred(&err), "{name}: wrong error type: {err:?}");
                assert!(standalone.is_err(), "{name}: standalone decode must fail");
                for d in &backend_decodes {
                    assert!(d.is_err(), "{name}: decode must fail");
                }
            }
            Expect::NoPanic => {
                // Reaching this point at all proves no panic; a
                // successful decode must at least be geometrically
                // sane.
                for d in backend_decodes.iter().chain([&standalone]).flatten() {
                    assert_eq!((d.width(), d.height()), (16, 16), "{name}");
                }
            }
            Expect::StandaloneErr => {
                assert!(parsed.is_ok(), "{name}: container itself must parse");
                let err = standalone
                    .err()
                    .unwrap_or_else(|| panic!("{name}: standalone decode must fail"));
                assert!(any_typed(&err), "{name}");
                // The external (correct) model still decodes fine.
                for d in &backend_decodes {
                    assert!(d.is_ok(), "{name}: model-bound decode must survive");
                }
            }
        }
    }
}

#[test]
fn every_single_byte_truncation_fails_typed() {
    let (codec, valid) = valid_fixture();
    for cut in 0..valid.len() {
        let bytes = &valid[..cut];
        let err = container::Container::from_bytes(bytes).expect_err("truncation must fail");
        assert!(
            matches!(
                err,
                CodecError::Truncated { .. } | CodecError::ChecksumMismatch { .. }
            ),
            "cut {cut}: unexpected {err:?}"
        );
        assert!(codec.decode_bytes_with(bytes, BackendKind::Panel).is_err());
        assert!(decode_standalone(bytes).is_err());
    }
}

#[test]
fn every_single_byte_corruption_is_caught_or_harmless() {
    // Without CRC repair, any single flipped byte must be caught by the
    // checksum (or an earlier structural check) on every entry point.
    let (codec, valid) = valid_fixture();
    for pos in 0..valid.len() {
        let mut bytes = valid.clone();
        bytes[pos] ^= 0x24;
        assert!(
            container::Container::from_bytes(&bytes).is_err(),
            "flip at {pos} went unnoticed"
        );
        assert!(codec.decode_bytes_with(&bytes, BackendKind::Panel).is_err());
    }
}

#[test]
fn v2_every_single_byte_truncation_fails_typed() {
    for coder in [EntropyCoder::RicePos, EntropyCoder::Range] {
        let (codec, valid) = valid_fixture_with(coder);
        for cut in 0..valid.len() {
            assert!(
                container::Container::from_bytes(&valid[..cut]).is_err(),
                "{coder}: truncation at {cut} must fail"
            );
        }
        // Spot the error taxonomy on a few cuts (every one is either a
        // truncation or a checksum failure, like v1).
        for cut in [0, 10, valid.len() / 2, valid.len() - 1] {
            let err = container::Container::from_bytes(&valid[..cut]).expect_err("must fail");
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::ChecksumMismatch { .. }
                ),
                "{coder} cut {cut}: unexpected {err:?}"
            );
            assert!(codec
                .decode_bytes_with(&valid[..cut], BackendKind::Panel)
                .is_err());
            assert!(decode_standalone(&valid[..cut]).is_err());
        }
    }
}

#[test]
fn v2_every_single_byte_flip_is_caught_without_crc_repair() {
    for coder in [EntropyCoder::RicePos, EntropyCoder::Range] {
        let (codec, valid) = valid_fixture_with(coder);
        for pos in 0..valid.len() {
            let mut bytes = valid.clone();
            bytes[pos] ^= 0x24;
            assert!(
                container::Container::from_bytes(&bytes).is_err(),
                "{coder}: flip at {pos} went unnoticed"
            );
            assert!(codec.decode_bytes_with(&bytes, BackendKind::Panel).is_err());
        }
    }
}

#[test]
fn v2_payload_flips_with_crc_refixed_never_panic() {
    // Re-fix the CRC after every single-byte payload flip: the bytes
    // are then "authentic" as far as the format can tell, so the
    // entropy decoders themselves must absorb the damage — a typed
    // error or a structurally valid garbage decode, never a panic or
    // an unbounded allocation.
    for coder in [EntropyCoder::RicePos, EntropyCoder::Range] {
        let (codec, valid) = valid_fixture_with(coder);
        for pos in 0..valid.len() - 4 {
            let mut bytes = valid.clone();
            bytes[pos] ^= 0x41;
            refix_crc(&mut bytes);
            match codec.decode_bytes_with(&bytes, BackendKind::Panel) {
                Ok(img) => assert_eq!(
                    (img.width(), img.height()),
                    (16, 16),
                    "{coder}: flip at {pos} decoded to bad geometry"
                ),
                Err(CodecError::Core(_)) | Err(CodecError::Io(_)) => {
                    panic!("{coder}: flip at {pos} surfaced an out-of-layer error")
                }
                Err(_) => {}
            }
            let _ = decode_standalone(&bytes);
        }
    }
}

#[test]
fn v2_targeted_header_forgeries_fail_typed() {
    let (_, valid) = valid_fixture_with(EntropyCoder::RicePos);
    // Downgrading the version under a v2 entropy flag is an unknown
    // coder, not garbage.
    let mut bytes = valid.clone();
    bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
    refix_crc(&mut bytes);
    assert!(matches!(
        container::Container::from_bytes(&bytes),
        Err(CodecError::UnsupportedCoder { .. })
    ));
    // Setting both coder flags at once likewise.
    let mut bytes = valid.clone();
    let flags = u16::from_le_bytes([bytes[6], bytes[7]]) | (1 << 2) | (1 << 3);
    bytes[6..8].copy_from_slice(&flags.to_le_bytes());
    refix_crc(&mut bytes);
    assert!(matches!(
        container::Container::from_bytes(&bytes),
        Err(CodecError::UnsupportedCoder { .. })
    ));
    // A v2 container whose payload is too small for its tile grid is
    // rejected before the tile vector is allocated (rice-pos keeps the
    // one-bit-per-tile budget guard).
    let mut bytes = valid;
    bytes[16..20].copy_from_slice(&(1u32 << 30).to_le_bytes());
    bytes[20..24].copy_from_slice(&(1u32 << 30).to_le_bytes());
    bytes[24..26].copy_from_slice(&1u16.to_le_bytes());
    refix_crc(&mut bytes);
    assert!(matches!(
        container::Container::from_bytes(&bytes),
        Err(CodecError::Invalid(_))
    ));

    // The range coder's tile grid is bounded by its own hard cap — a
    // small CRC-fixed payload cannot imply a gigatile allocation.
    let (_, valid) = valid_fixture_with(EntropyCoder::Range);
    let mut bytes = valid.clone();
    bytes[16..20].copy_from_slice(&(1u32 << 30).to_le_bytes());
    bytes[20..24].copy_from_slice(&(1u32 << 30).to_le_bytes());
    bytes[24..26].copy_from_slice(&1u16.to_le_bytes());
    refix_crc(&mut bytes);
    let err = container::Container::from_bytes(&bytes).expect_err("tile bomb must fail");
    assert!(
        matches!(err, CodecError::Invalid(ref m) if m.contains("tile")),
        "unexpected {err:?}"
    );

    // Forged dimensions *inside* the tile cap still cannot make a tiny
    // payload balloon: the decoded-item budget ties work and memory to
    // the input size, so this returns a typed error promptly instead of
    // materialising millions of tiles from a few hundred bytes.
    let mut bytes = valid.clone();
    bytes[16..20].copy_from_slice(&2048u32.to_le_bytes());
    bytes[20..24].copy_from_slice(&2048u32.to_le_bytes());
    bytes[24..26].copy_from_slice(&1u16.to_le_bytes()); // 4 Mi tiles exactly
    refix_crc(&mut bytes);
    let t0 = std::time::Instant::now();
    assert!(container::Container::from_bytes(&bytes).is_err());
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(500),
        "budget must reject the forged grid promptly, took {:?}",
        t0.elapsed()
    );

    // Likewise a forged 65535-latent header: the first occupied tile
    // would charge 65536 items against a few-hundred-item budget.
    let mut bytes = valid;
    bytes[26..28].copy_from_slice(&u16::MAX.to_le_bytes());
    refix_crc(&mut bytes);
    assert!(container::Container::from_bytes(&bytes).is_err());
}

#[test]
fn wrong_model_is_a_model_mismatch_not_garbage() {
    let (_, bytes) = valid_fixture();
    let other_img = datasets::grayscale_blobs(1, 16, 16, 7).remove(0);
    let other = Codec::spectral_for_image(&other_img, 4, 8).expect("model");
    assert!(matches!(
        other.decode_bytes(&bytes),
        Err(CodecError::ModelMismatch { .. })
    ));
}
