//! Property-based tests over the codec subsystem: model persistence is
//! bit-exact on arbitrary parameters, encode→decode of random tiles
//! meets the quantizer's error bound and the PSNR floor, corrupted or
//! truncated inputs always surface as typed errors (never panics), and
//! — the cross-backend conformance suite — every execution backend
//! produces bit-identical mesh passes, latents and containers.

use proptest::prelude::*;
use qn::backend::{BackendKind, MeshBackend, PanelBackend};
use qn::codec::{container, model, Codec, CodecError, CodecOptions, Quantizer};
use qn::core::compression::CompressionNetwork;
use qn::core::config::{CompressionTargetKind, SubspaceKind};
use qn::core::reconstruction::ReconstructionNetwork;
use qn::core::QuantumAutoencoder;
use qn::image::{metrics, GrayImage};
use qn::photonic::Mesh;

/// Mesh angles covering the full parameter range.
fn angle() -> impl Strategy<Value = f64> {
    -10.0..10.0f64
}

/// A pixel vector with at least some energy (the image-data regime).
fn pixel_vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..1.0f64, len)
        .prop_filter("needs some energy", |v| v.iter().any(|&p| p > 1e-3))
}

/// Autoencoder on 16 modes with the given flattened θ for `U_C` and an
/// exact-inverse `U_R`.
fn autoencoder_16(thetas: &[f64], d: usize) -> QuantumAutoencoder {
    let mut mesh = Mesh::zeros(16, 2);
    mesh.set_thetas(thetas);
    let compression = CompressionNetwork::new(
        mesh,
        d,
        SubspaceKind::KeepLast,
        CompressionTargetKind::TrashPenalty,
    )
    .expect("valid dims");
    let reconstruction = ReconstructionNetwork::from_reversed_compression(&compression, 2);
    QuantumAutoencoder::new(compression, reconstruction)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn model_save_load_is_bit_exact_for_arbitrary_angles(
        thetas in proptest::collection::vec(angle(), 30),
        d in 1usize..16
    ) {
        let ae = autoencoder_16(&thetas, d);
        let bytes = model::encode_model(&ae);
        let loaded = model::decode_model(&bytes).unwrap();
        prop_assert_eq!(loaded.export_parameters(), ae.export_parameters());
        prop_assert_eq!(model::encode_model(&loaded), bytes);
        prop_assert_eq!(model::model_id(&loaded), model::model_id(&ae));
        // Identical amplitudes, bitwise, on an arbitrary probe.
        let x: Vec<f64> = (0..16).map(|i| ((i * 7) as f64 * 0.13).sin()).collect();
        prop_assert_eq!(loaded.compression.forward(&x), ae.compression.forward(&x));
        prop_assert_eq!(
            loaded.reconstruction.reconstruct(&x),
            ae.reconstruction.reconstruct(&x)
        );
    }

    #[test]
    fn random_tiles_roundtrip_within_quantizer_bounds(
        pixels in pixel_vector(16),
        thetas in proptest::collection::vec(angle(), 30)
    ) {
        // d = 16 keeps everything: the only loss is quantization, so the
        // decoded tile must sit near the original by the quantizer's
        // per-amplitude error bound (times the mesh's conditioning = 1,
        // orthogonal) scaled by the stored norm.
        let ae = autoencoder_16(&thetas, 16);
        let codec = Codec::new(ae);
        let img = GrayImage::from_pixels(4, 4, pixels.clone()).unwrap();
        let opts = CodecOptions { inline_model: false, ..CodecOptions::default() };
        let bytes = codec.encode_image(&img, &opts).unwrap();
        let back = codec.decode_bytes(&bytes).unwrap();
        let norm: f64 = pixels.iter().map(|p| p * p).sum::<f64>().sqrt();
        let q = Quantizer::new(8).unwrap();
        // Quantizing 16 amplitudes perturbs the state by at most
        // √16·ε in L2; decoding multiplies by the norm. Use a generous
        // 6σ-style slack over the per-pixel bound.
        let bound = norm * q.max_error() * 16.0f64.sqrt() + 2e-4 * norm + 1e-9;
        for (a, b) in back.pixels().iter().zip(&pixels) {
            prop_assert!((a - b).abs() <= bound, "pixel {a} vs {b}, bound {bound}");
        }
    }

    #[test]
    fn lossy_roundtrip_meets_psnr_floor_on_random_tiles(
        pixels in pixel_vector(16).prop_filter(
            "tile norm well above the quantizer floor",
            |v| v.iter().map(|p| p * p).sum::<f64>().sqrt() > 0.25
        )
    ) {
        // d = 8 at 8-bit latents on a PCA-matched mesh: the acceptance
        // regime. The spectral model is fit to this single tile, so the
        // only loss is quantization noise — PSNR must clear 20 dB.
        let img = GrayImage::from_pixels(4, 4, pixels).unwrap();
        let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
        let opts = CodecOptions { inline_model: false, ..CodecOptions::default() };
        let bytes = codec.encode_image(&img, &opts).unwrap();
        let back = codec.decode_bytes(&bytes).unwrap();
        let psnr = metrics::psnr(&img, &back.clamped());
        prop_assert!(psnr >= 20.0, "PSNR {psnr:.2} dB");
    }

    #[test]
    fn truncated_containers_error_and_never_panic(
        pixels in pixel_vector(64),
        cut_fraction in 0.0..1.0f64
    ) {
        let img = GrayImage::from_pixels(8, 8, pixels).unwrap();
        let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
        let bytes = codec.encode_image(&img, &CodecOptions::default()).unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let err = container::Container::from_bytes(&bytes[..cut.min(bytes.len() - 1)])
            .expect_err("truncated container must fail");
        prop_assert!(matches!(
            err,
            CodecError::Truncated { .. } | CodecError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn corrupted_containers_error_and_never_panic(
        pixels in pixel_vector(64),
        flip_at in 0.0..1.0f64,
        flip_mask in 1u32..256
    ) {
        let img = GrayImage::from_pixels(8, 8, pixels).unwrap();
        let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
        let mut bytes = codec.encode_image(&img, &CodecOptions::default()).unwrap();
        let pos = ((bytes.len() as f64) * flip_at) as usize % bytes.len();
        bytes[pos] ^= flip_mask as u8; // mask ∈ 1..256 → at least one bit flips
        // Decoding must produce a typed error (any variant) — never panic.
        prop_assert!(qn::codec::decode_standalone(&bytes).is_err());
    }

    #[test]
    fn backends_produce_bit_identical_mesh_passes(
        dim in 2usize..13,
        n_layers in 1usize..4,
        width in 1usize..9,
        batch_n in 0usize..14,
        thetas in proptest::collection::vec(angle(), 36),
        data in proptest::collection::vec(-1.0..1.0f64, 170)
    ) {
        // Random mesh of `n_layers` layers on `dim` modes, including the
        // reversed (descending-cascade) structure U_R uses.
        let mut mesh = Mesh::zeros(dim, n_layers);
        mesh.set_thetas(&thetas[..(dim - 1) * n_layers]);
        let batch: Vec<Vec<f64>> = (0..batch_n)
            .map(|i| data[i * dim..(i + 1) * dim].to_vec())
            .collect();
        for m in [mesh.clone(), mesh.reversed()] {
            let reference: Vec<Vec<f64>> = batch.iter().map(|v| m.forward_real_copy(v)).collect();
            let inv_reference: Vec<Vec<f64>> = batch
                .iter()
                .map(|v| {
                    let mut v = v.clone();
                    m.inverse_real(&mut v);
                    v
                })
                .collect();
            for kind in BackendKind::ALL {
                prop_assert_eq!(&kind.backend().forward_batch(&m, &batch), &reference);
                prop_assert_eq!(&kind.backend().inverse_batch(&m, &batch), &inv_reference);
            }
            // Explicit panel widths exercise ragged last panels (the
            // batch length is rarely a multiple of `width`) and the
            // width-1 degenerate panel.
            let panel = PanelBackend::with_width(width);
            prop_assert_eq!(&panel.forward_batch(&m, &batch), &reference);
            prop_assert_eq!(&panel.inverse_batch(&m, &batch), &inv_reference);
        }
    }

    #[test]
    fn containers_are_backend_independent(
        pixels in pixel_vector(96),
        d in 1usize..17,
        per_tile_scale in 0u32..2
    ) {
        // 12×8 image, 6 tiles; d spans the full range including the
        // d = 1 edge case. Every backend must produce byte-identical
        // containers and pixel-identical decodes — the format
        // compatibility guarantee multi-backend execution rests on.
        let img = GrayImage::from_pixels(12, 8, pixels).unwrap();
        let thetas: Vec<f64> = (0..30).map(|i| (i as f64 * 0.711).sin() * 3.0).collect();
        let ae = autoencoder_16(&thetas, d);
        let codec = Codec::new(ae);
        let encode = |backend: BackendKind| {
            let opts = CodecOptions {
                inline_model: false,
                per_tile_scale: per_tile_scale == 1,
                backend,
                ..CodecOptions::default()
            };
            codec.encode_image(&img, &opts).unwrap()
        };
        let reference_bytes = encode(BackendKind::Scalar);
        let reference_img = codec
            .decode_bytes_with(&reference_bytes, BackendKind::Scalar)
            .unwrap();
        for kind in BackendKind::ALL {
            prop_assert_eq!(&encode(kind), &reference_bytes, "{} encode", kind);
            prop_assert_eq!(
                &codec.decode_bytes_with(&reference_bytes, kind).unwrap(),
                &reference_img,
                "{} decode",
                kind
            );
        }
    }

    #[test]
    fn truncated_models_error_and_never_panic(
        thetas in proptest::collection::vec(angle(), 30),
        cut_fraction in 0.0..1.0f64
    ) {
        let ae = autoencoder_16(&thetas, 4);
        let bytes = model::encode_model(&ae);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let err = model::decode_model(&bytes[..cut.min(bytes.len() - 1)])
            .expect_err("truncated model must fail");
        prop_assert!(matches!(
            err,
            CodecError::Truncated { .. } | CodecError::ChecksumMismatch { .. }
        ));
    }
}

/// The full codec path is thread-count invariant: encoding and decoding
/// a golden image inside forced 1/2/4/8-thread pools produces the same
/// `.qnc` container byte-for-byte and the same pixels bit-for-bit. The
/// chunked panel schedule partitions tiles identically regardless of
/// worker count, so parallelism moves only wall-clock, never bytes.
#[test]
fn codec_output_is_thread_count_invariant() {
    let img = qn::image::datasets::grayscale_blobs(1, 64, 64, 42).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).expect("spectral model");

    let mut reference: Option<(Vec<u8>, GrayImage)> = None;
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("bench pool");
        for backend in BackendKind::ALL {
            let (bytes, decoded) = pool.install(|| {
                let opts = CodecOptions {
                    backend,
                    inline_model: false,
                    ..CodecOptions::default()
                };
                let bytes = codec.encode_image(&img, &opts).expect("encode");
                let decoded = codec.decode_bytes_with(&bytes, backend).expect("decode");
                (bytes, decoded)
            });
            match &reference {
                None => reference = Some((bytes, decoded)),
                Some((ref_bytes, ref_img)) => {
                    assert_eq!(
                        &bytes, ref_bytes,
                        "{backend} container diverged under {threads} threads"
                    );
                    assert_eq!(
                        &decoded, ref_img,
                        "{backend} pixels diverged under {threads} threads"
                    );
                }
            }
        }
    }
}
