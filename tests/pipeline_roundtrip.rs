//! End-to-end integration: the full paper pipeline across all crates.

use qn::core::config::NetworkConfig;
use qn::core::trainer::Trainer;
use qn::image::{datasets, metrics};

/// The paper's iteration budget (convergence on this landscape happens
/// between iterations ~60 and 150, so tests use the full budget).
fn quick() -> NetworkConfig {
    NetworkConfig::paper_default().with_iterations(150)
}

#[test]
fn losses_fall_and_accuracy_rises_on_paper_dataset() {
    let data = datasets::paper_binary_16(25);
    let mut trainer = Trainer::new(quick(), &data).expect("valid configuration");
    let report = trainer.train().expect("training runs");
    let h = &report.history;

    // Both losses improve by at least 10×.
    assert!(
        h.compression_loss.last().unwrap().sum < h.compression_loss[0].sum * 0.1,
        "L_C: {} → {}",
        h.compression_loss[0].sum,
        h.compression_loss.last().unwrap().sum
    );
    assert!(
        h.reconstruction_loss.last().unwrap().sum < h.reconstruction_loss[0].sum * 0.1 + 1e-9,
        "L_R: {} → {}",
        h.reconstruction_loss[0].sum,
        h.reconstruction_loss.last().unwrap().sum
    );
    // Binary-threshold accuracy reaches the paper's regime (≥ 97.75 %).
    assert!(
        report.max_accuracy_binary >= 97.75,
        "binary accuracy {}",
        report.max_accuracy_binary
    );
}

#[test]
fn full_paper_run_reaches_paper_numbers() {
    // The headline check (E1–E3 shape): with the full budget the strict
    // Eq. 10 accuracy must reach at least the paper's 97.75 %.
    let data = datasets::paper_binary_16(25);
    let cfg = NetworkConfig::paper_default().with_iterations(300);
    let mut trainer = Trainer::new(cfg, &data).expect("valid configuration");
    let report = trainer.train().expect("training runs");
    assert!(
        report.max_accuracy >= 97.75,
        "snap accuracy {} below the paper's 97.75",
        report.max_accuracy
    );
    assert!(
        report.final_compression_loss < 0.017,
        "L_C above the paper's 0.017"
    );
    assert!(
        report.final_reconstruction_loss < 0.023,
        "L_R above the paper's 0.023"
    );
}

#[test]
fn trained_autoencoder_reconstructs_unseen_family_members() {
    // Train on 12 random members of the quadrant-union family; the
    // family's span is rank 4, so *any* union — including members absent
    // from training — must reconstruct after thresholding. Spectral
    // initialisation pins the compression to the family's exact subspace,
    // making the generalisation property hold from the start and the
    // test independent of optimiser luck.
    use qn::core::config::InitStrategy;
    // The first 12 unions include all four single quadrants, so they span
    // the full 4-dimensional family subspace.
    let train = datasets::quadrant_unions()[..12].to_vec();
    let cfg = quick().with_init(InitStrategy::Spectral);
    let mut trainer = Trainer::new(cfg, &train).expect("valid configuration");
    trainer.train().expect("training runs");
    let ae = trainer.into_autoencoder();
    for probe in datasets::quadrant_unions() {
        let recon = ae
            .roundtrip_image(&probe)
            .expect("roundtrip")
            .thresholded(0.5);
        let acc = metrics::pixel_accuracy(&recon, &probe, 0.01);
        assert!(acc >= 93.75, "union reconstructed at {acc}%");
    }
}

#[test]
fn compressed_representation_suffices_for_reconstruction() {
    // The d kept amplitudes + norm are the entire payload: rebuilding the
    // full state from them must reproduce the decoder path.
    let data = datasets::paper_binary_16(25);
    let mut trainer =
        Trainer::new(quick().with_iterations(150), &data).expect("valid configuration");
    trainer.train().expect("training runs");
    let ae = trainer.into_autoencoder();
    let img = &data[3];
    let (kept, norm) = ae
        .compressed_representation(img.pixels())
        .expect("image encodes");
    assert_eq!(kept.len(), 4);

    // Re-embed the kept amplitudes at the kept indices and reconstruct.
    let mut state = vec![0.0; 16];
    for (slot, &j) in ae.compression.projector().kept_indices().iter().enumerate() {
        state[j] = kept[slot];
    }
    let out = ae.reconstruction.reconstruct(&state);
    let decoded = qn::core::encoding::decode(&out, norm, 16);
    let direct = ae.roundtrip(img.pixels()).expect("roundtrip");
    for (a, b) in decoded.iter().zip(&direct) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn training_is_bit_deterministic_across_runs() {
    let data = datasets::paper_binary_16(25);
    let r1 = Trainer::new(quick(), &data)
        .expect("valid configuration")
        .train()
        .expect("training runs");
    let r2 = Trainer::new(quick(), &data)
        .expect("valid configuration")
        .train()
        .expect("training runs");
    assert_eq!(r1.final_compression_loss, r2.final_compression_loss);
    assert_eq!(r1.final_reconstruction_loss, r2.final_reconstruction_loss);
    assert_eq!(r1.history.theta_c_trace, r2.history.theta_c_trace);
}

#[test]
fn different_seeds_give_different_but_convergent_runs() {
    let data = datasets::paper_binary_16(25);
    // Seed values are tied to the RNG stream (crates/compat/rand): a few
    // initialisations plateau near — not below — 1e-3 within 150
    // iterations, so this test pins two seeds that converge fully.
    let r1 = Trainer::new(quick().with_seed(2), &data)
        .expect("valid configuration")
        .train()
        .expect("training runs");
    let r2 = Trainer::new(quick().with_seed(3), &data)
        .expect("valid configuration")
        .train()
        .expect("training runs");
    // Different trajectories…
    assert_ne!(r1.history.theta_c_trace[0], r2.history.theta_c_trace[0]);
    // …same destination (both near zero loss).
    assert!(r1.final_compression_loss < 1e-3);
    assert!(r2.final_compression_loss < 1e-3);
}
