//! Quantum-mechanical sanity of the simulator substrate, exercised
//! through the umbrella crate's public API.

use qn::photonic::Mesh;
use qn::sim::circuit::{Circuit, Op};
use qn::sim::density::DensityMatrix;
use qn::sim::gates;
use qn::sim::{Complex64, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn bell_pair_has_maximal_entanglement() {
    let mut s = StateVector::zero_state(2);
    let mut c = Circuit::new();
    c.push(Op::H(0)).push(Op::Cnot(0, 1));
    c.apply(&mut s).expect("circuit applies");
    // Reduced state is maximally mixed → purity 1/2.
    let rho = DensityMatrix::from_pure(&s);
    let reduced = rho.partial_trace(&[0]).expect("trace out qubit 0");
    assert!((reduced.purity() - 0.5).abs() < 1e-12);
}

#[test]
fn mesh_acting_on_statevector_matches_raw_amplitudes() {
    // The photonic mesh and the circuit's ModeRotation op must agree:
    // same gates, two code paths.
    let mut rng = StdRng::seed_from_u64(3);
    let mesh = Mesh::random(8, 2, &mut rng);
    let mut sv = StateVector::uniform(3);
    let mut raw = sv.real_parts();

    // Path 1: circuit ops.
    let mut circuit = Circuit::new();
    for layer in mesh.layers() {
        for (k, &theta) in layer.thetas().iter().enumerate() {
            circuit.push(Op::ModeRotation {
                k,
                theta,
                alpha: 0.0,
            });
        }
    }
    circuit.apply(&mut sv).expect("circuit applies");

    // Path 2: the mesh's own forward.
    mesh.forward_real(&mut raw);

    for (a, &r) in sv.amplitudes().iter().zip(&raw) {
        assert!((a.re - r).abs() < 1e-12);
        assert!(a.im.abs() < 1e-14);
    }
}

#[test]
fn measurement_statistics_match_born_rule() {
    let s = StateVector::from_real(&[0.5, 0.5, 0.5, 0.5]).expect("4 amplitudes");
    let mut rng = StdRng::seed_from_u64(11);
    let counts = s.sample_counts(40_000, &mut rng);
    for c in counts {
        let p = c as f64 / 40_000.0;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }
}

#[test]
fn global_phase_is_unobservable() {
    let a = StateVector::from_real(&[0.6, 0.8]).expect("2 amplitudes");
    let phased = StateVector::from_amplitudes(
        a.amplitudes()
            .iter()
            .map(|z| *z * Complex64::from_polar(1.0, 1.234))
            .collect(),
    )
    .expect("2 amplitudes");
    for (pa, pb) in a.probabilities().iter().zip(phased.probabilities()) {
        assert!((pa - pb).abs() < 1e-12, "{pa} vs {pb}");
    }
    assert!((a.fidelity(&phased).expect("same dims") - 1.0).abs() < 1e-12);
}

#[test]
fn all_standard_gates_preserve_norm_on_random_states() {
    let mut rng = StdRng::seed_from_u64(17);
    let base: Vec<f64> = qn::linalg::random::gaussian_vec(8, &mut rng);
    let mut s = StateVector::from_real(&base).expect("8 amplitudes");
    s.normalize().expect("nonzero");
    for (i, g) in [
        gates::hadamard(),
        gates::pauli_x(),
        gates::pauli_y(),
        gates::pauli_z(),
        gates::s_gate(),
        gates::t_gate(),
        gates::rx(0.4),
        gates::ry(-0.9),
        gates::rz(2.2),
        gates::phase(0.1),
    ]
    .into_iter()
    .enumerate()
    {
        gates::apply_single(&mut s, i % 3, &g).expect("gate applies");
        assert!((s.norm() - 1.0).abs() < 1e-12, "gate {i} broke the norm");
    }
}

#[test]
fn deutsch_like_interference() {
    // H-Z-H = X up to phase: |0⟩ → |1⟩.
    let mut s = StateVector::zero_state(1);
    gates::apply_single(&mut s, 0, &gates::hadamard()).expect("h");
    gates::apply_single(&mut s, 0, &gates::pauli_z()).expect("z");
    gates::apply_single(&mut s, 0, &gates::hadamard()).expect("h");
    assert!((s.probability(1).expect("in range") - 1.0).abs() < 1e-12);
}

#[test]
fn ghz_state_collapses_consistently() {
    let mut s = StateVector::zero_state(3);
    let mut c = Circuit::new();
    c.push(Op::H(0)).push(Op::Cnot(0, 1)).push(Op::Cnot(1, 2));
    c.apply(&mut s).expect("circuit applies");
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..200 {
        let outcome = s.sample(&mut rng);
        assert!(
            outcome == 0 || outcome == 7,
            "GHZ measured a non-correlated outcome: {outcome}"
        );
    }
}

#[test]
fn shot_estimates_converge_at_inverse_sqrt_rate() {
    use qn::sim::shots;
    let s = StateVector::from_real(&[0.8, 0.6]).expect("2 amplitudes");
    let mut rng = StdRng::seed_from_u64(31);
    let mut errs = Vec::new();
    for shots_n in [100usize, 10_000] {
        let p = shots::estimate_probabilities(&s, shots_n, &mut rng);
        errs.push((p[0] - 0.64).abs());
    }
    // 100× more shots → ~10× smaller error; allow generous slack.
    assert!(errs[1] < errs[0], "errors {errs:?}");
}
