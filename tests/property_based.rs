//! Property-based tests (proptest) over the core invariants of the
//! workspace: unitarity, losslessness, decomposition exactness, and
//! encode/decode consistency — on *arbitrary* inputs, not hand-picked
//! ones.

use proptest::prelude::*;
use qn::core::encoding;
use qn::linalg::vector;
use qn::photonic::{GateSequence, Mesh};
use qn::sim::{Projector, StateVector};

/// Angles that exercise the full parameter range of the networks.
fn angle() -> impl Strategy<Value = f64> {
    -10.0..10.0f64
}

/// A non-zero, non-negative pixel vector (image data regime).
fn pixel_vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..1.0f64, len)
        .prop_filter("needs some energy", |v| vector::norm2(v) > 1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mesh_forward_preserves_norm(thetas in proptest::collection::vec(angle(), 21)) {
        // 8 modes × 3 layers = 21 angles.
        let mut mesh = Mesh::zeros(8, 3);
        mesh.set_thetas(&thetas);
        let mut v: Vec<f64> = (0..8).map(|i| ((i * i) as f64 * 0.37).sin()).collect();
        let n0 = vector::norm2(&v);
        mesh.forward_real(&mut v);
        prop_assert!((vector::norm2(&v) - n0).abs() < 1e-10);
    }

    #[test]
    fn mesh_inverse_is_exact(thetas in proptest::collection::vec(angle(), 14)) {
        let mut mesh = Mesh::zeros(8, 2);
        mesh.set_thetas(&thetas);
        let orig: Vec<f64> = (0..8).map(|i| (i as f64 - 3.5) * 0.1).collect();
        let mut v = orig.clone();
        mesh.forward_real(&mut v);
        mesh.inverse_real(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn reversed_mesh_with_negated_angles_inverts(
        thetas in proptest::collection::vec(angle(), 10)
    ) {
        let mut mesh = Mesh::zeros(6, 2);
        mesh.set_thetas(&thetas);
        let mut inv = mesh.reversed();
        let negated: Vec<f64> = inv.thetas().iter().map(|t| -t).collect();
        inv.set_thetas(&negated);
        let orig: Vec<f64> = (0..6).map(|i| ((i + 1) as f64).recip()).collect();
        let mut v = orig.clone();
        mesh.forward_real(&mut v);
        inv.forward_real(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn encode_decode_roundtrips_nonnegative_data(x in pixel_vector(16)) {
        let e = encoding::encode(&x, 16).unwrap();
        prop_assert!((vector::norm2(&e.amplitudes) - 1.0).abs() < 1e-10);
        let back = encoding::decode(&e.amplitudes, e.norm, e.data_len);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn projection_never_increases_probability(
        x in pixel_vector(16),
        d in 1usize..16
    ) {
        let e = encoding::encode(&x, 16).unwrap();
        let p = Projector::keep_last(16, d).unwrap();
        let kept = p.kept_probability(&e.amplitudes).unwrap();
        let leaked = p.leaked_probability(&e.amplitudes).unwrap();
        prop_assert!(kept >= 0.0 && leaked >= 0.0);
        prop_assert!((kept + leaked - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gate_sequence_matrix_is_orthogonal(
        gates in proptest::collection::vec((0usize..5, angle()), 1..12)
    ) {
        let mut seq = GateSequence::new(6);
        for (k, t) in gates {
            seq.push(qn::photonic::BeamSplitter::real(k, t));
        }
        prop_assert!(seq.as_matrix().is_orthogonal(1e-9));
    }

    #[test]
    fn clements_roundtrips_mesh_matrices(
        thetas in proptest::collection::vec(angle(), 10)
    ) {
        // Any mesh is orthogonal, so Clements must reproduce it exactly.
        let mut mesh = Mesh::zeros(6, 2);
        mesh.set_thetas(&thetas);
        let u = mesh.as_matrix();
        let seq = qn::photonic::clements::clements_decompose(&u, 1e-8).unwrap();
        prop_assert!(seq.as_matrix().max_abs_diff(&u).unwrap() < 1e-8);
    }

    #[test]
    fn statevector_fidelity_is_bounded_and_symmetric(
        a in pixel_vector(8),
        b in pixel_vector(8)
    ) {
        let mut sa = StateVector::from_real(&a).unwrap();
        sa.normalize().unwrap();
        let mut sb = StateVector::from_real(&b).unwrap();
        sb.normalize().unwrap();
        let f_ab = sa.fidelity(&sb).unwrap();
        let f_ba = sb.fidelity(&sa).unwrap();
        prop_assert!((f_ab - f_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f_ab));
    }

    #[test]
    fn analytic_gradient_matches_central_difference_everywhere(
        thetas in proptest::collection::vec(angle(), 14),
        x in pixel_vector(8)
    ) {
        use qn::core::gradient::{loss_and_gradient, GradientMethod};
        let mut mesh = Mesh::zeros(8, 2);
        mesh.set_thetas(&thetas);
        let e = encoding::encode(&x, 8).unwrap();
        let inputs = vec![e.amplitudes];
        let proj = Projector::keep_last(8, 3).unwrap();
        let residual = move |_i: usize, out: &[f64], buf: &mut [f64]| {
            for (j, (b, &o)) in buf.iter_mut().zip(out).enumerate() {
                *b = if proj.keeps(j) { 0.0 } else { o };
            }
        };
        let (l1, g1) = loss_and_gradient(&mesh, &inputs, &residual, GradientMethod::Analytic);
        let (l2, g2) = loss_and_gradient(
            &mesh,
            &inputs,
            &residual,
            GradientMethod::CentralDifference { delta: 1e-6 },
        );
        prop_assert!((l1 - l2).abs() < 1e-10);
        for (a, b) in g1.iter().zip(&g2) {
            prop_assert!((a - b).abs() < 1e-6, "analytic {} vs central {}", a, b);
        }
    }

    #[test]
    fn svd_reconstructs_arbitrary_matrices(
        data in proptest::collection::vec(-5.0..5.0f64, 20)
    ) {
        let m = qn::linalg::Matrix::from_vec(5, 4, data).unwrap();
        let d = qn::linalg::svd::svd(&m).unwrap();
        let err = d.reconstruct().max_abs_diff(&m).unwrap();
        prop_assert!(err < 1e-9, "reconstruction error {}", err);
        // Singular values sorted descending and non-negative.
        for w in d.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(d.singular_values.iter().all(|&s| s >= 0.0));
    }
}
