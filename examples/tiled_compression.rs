//! Extension application: compressing a *large* image with the 4×4
//! quantum autoencoder by tiling — the bridge from the paper's N = 16
//! network to its introduction's "large-scale image data" claim, in the
//! same way JPEG applies a fixed 8×8 transform to arbitrary images.
//!
//! A 32×32 binary scene built from quadrant-union blocks is split into
//! 4×4 tiles, every tile is compressed 16 → 4+1 numbers and
//! reconstructed, and the stitched result is compared to the original.
//!
//! Run with: `cargo run --release --example tiled_compression`

use qn::core::config::NetworkConfig;
use qn::core::trainer::Trainer;
use qn::image::{ascii, datasets, metrics, tiles, GrayImage};

/// Build a 32×32 scene whose 4×4 blocks are random members of the
/// quadrant-union family (so each tile lies in the trained subspace).
fn big_scene() -> GrayImage {
    let pool = datasets::paper_binary_16(64); // 64 tiles, seeded
    let mut img = GrayImage::zeros(32, 32);
    for (idx, patch) in pool.iter().enumerate() {
        let tx = idx % 8;
        let ty = idx / 8;
        for py in 0..4 {
            for px in 0..4 {
                img.set(tx * 4 + px, ty * 4 + py, patch.get(px, py));
            }
        }
    }
    img
}

fn main() {
    // Train the tile-level autoencoder once on the 25-image paper set.
    let mut trainer = Trainer::new(
        NetworkConfig::paper_default().with_iterations(300),
        &datasets::paper_binary_16(25),
    )
    .expect("valid configuration");
    let report = trainer.train().expect("training runs");
    let ae = trainer.into_autoencoder();
    println!(
        "tile autoencoder trained: L_R = {:.2e}, per-tile payload {} amplitudes + 1 norm",
        report.final_reconstruction_loss,
        ae.compression.compressed_dim(),
    );

    let scene = big_scene();
    let reconstructed = tiles::map_tiles(&scene, 4, |patch| {
        // All-zero patches cannot be amplitude-encoded; pass them through
        // (their compressed form is simply "norm = 0").
        ae.roundtrip_image(patch).ok().map(|r| r.thresholded(0.5))
    });

    let acc = metrics::pixel_accuracy(&reconstructed, &scene, 0.01);
    let stored = (32 / 4) * (32 / 4) * (4 + 1);
    println!(
        "32x32 scene: {} pixels → {} stored numbers ({:.1}% of raw), accuracy {:.2}%",
        32 * 32,
        stored,
        stored as f64 / (32.0 * 32.0) * 100.0,
        acc
    );
    println!("\ntop-left 16×8 corner, original vs reconstruction:");
    let crop = |img: &GrayImage| {
        let mut c = GrayImage::zeros(16, 8);
        for y in 0..8 {
            for x in 0..16 {
                c.set(x, y, img.get(x, y));
            }
        }
        c
    };
    println!(
        "{}",
        ascii::render_row(&[&crop(&scene), &crop(&reconstructed)], "   |   ")
    );
    assert!(acc > 97.0, "tiled accuracy regressed: {acc}");
}
