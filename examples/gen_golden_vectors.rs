//! Regenerates the golden bitstream fixtures under `tests/vectors/` and
//! prints the constants pinned by `tests/golden_vectors.rs`.
//!
//! Run only when the container or model **format version is bumped**
//! deliberately: the whole point of the fixtures is that accidental
//! format drift — a backend that rounds differently, an entropy-coder
//! tweak — fails the golden tests instead of silently shipping.
//!
//! ```text
//! cargo run --release --example gen_golden_vectors
//! ```

use qn::codec::{model, BackendKind, Codec, CodecOptions, EntropyCoder};
use qn::image::{datasets, metrics, pgm};
use std::path::Path;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/vectors");
    std::fs::create_dir_all(&dir).expect("create tests/vectors");

    // Deterministic source image: smooth blobs, 24×16 → a 6×4 tile grid
    // with content in every tile. The fixture of record is the written
    // PGM (8-bit), so round-trip through it: everything below must see
    // exactly the pixels a reader of `golden_24x16.pgm` sees.
    let blobs = datasets::grayscale_blobs(1, 24, 16, 4242).remove(0);
    let pgm_path = dir.join("golden_24x16.pgm");
    pgm::write_pgm(&blobs, &pgm_path).expect("write pgm");
    let img = pgm::read_pgm(&pgm_path).expect("re-read pgm");

    // Spectral model distilled from the image itself (deterministic).
    let codec = Codec::spectral_for_image(&img, 4, 8).expect("spectral model");
    model::save_model(&dir.join("golden_24x16_d8.qnm"), codec.model()).expect("write qnm");

    let base = CodecOptions {
        inline_model: false,
        backend: BackendKind::Panel,
        ..CodecOptions::default()
    };
    let bytes = codec.encode_image(&img, &base).expect("encode");
    std::fs::write(dir.join("golden_24x16_d8.qnc"), &bytes).expect("write qnc");

    let scaled = codec
        .encode_image(
            &img,
            &CodecOptions {
                per_tile_scale: true,
                ..base.clone()
            },
        )
        .expect("encode scaled");
    std::fs::write(dir.join("golden_24x16_d8_scaled.qnc"), &scaled).expect("write scaled qnc");

    let inline = codec
        .encode_image(
            &img,
            &CodecOptions {
                inline_model: true,
                ..base.clone()
            },
        )
        .expect("encode inline");
    std::fs::write(dir.join("golden_24x16_d8_inline.qnc"), &inline).expect("write inline qnc");

    // Bitstream v2 fixtures: the same image and model through the
    // per-position Rice coder and the adaptive range coder.
    let ricepos = codec
        .encode_image(
            &img,
            &CodecOptions {
                entropy: EntropyCoder::RicePos,
                ..base.clone()
            },
        )
        .expect("encode rice-pos");
    std::fs::write(dir.join("golden_24x16_d8_ricepos.qnc"), &ricepos).expect("write ricepos qnc");
    let range = codec
        .encode_image(
            &img,
            &CodecOptions {
                entropy: EntropyCoder::Range,
                ..base
            },
        )
        .expect("encode range");
    std::fs::write(dir.join("golden_24x16_d8_range.qnc"), &range).expect("write range qnc");

    // Constants for tests/golden_vectors.rs.
    let back = codec.decode_bytes(&bytes).expect("decode").clamped();
    let quantized: Vec<u8> = back
        .pixels()
        .iter()
        .map(|p| (p * 255.0).round() as u8)
        .collect();
    println!("MODEL_ID     = {:#018x};", codec.model_id());
    println!("QNC_LEN      = {};", bytes.len());
    println!("SCALED_LEN   = {};", scaled.len());
    println!("INLINE_LEN   = {};", inline.len());
    println!("RICEPOS_LEN  = {};", ricepos.len());
    println!("RANGE_LEN    = {};", range.len());
    println!("PSNR_DB      = {:.6};", metrics::psnr(&img, &back));
    println!(
        "PIXEL_HASH   = {:#018x};",
        qn::codec::bitstream::fnv1a64(&quantized)
    );
}
