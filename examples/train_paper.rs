//! The paper's full Sec. IV pipeline with live progress output —
//! Fig. 1's four stages end to end, streaming per-iteration metrics
//! through the observer hook and a crossbeam channel (the kind of
//! monitoring a real training harness would attach).
//!
//! Run with: `cargo run --release --example train_paper`

use crossbeam::channel;
use qn::core::config::NetworkConfig;
use qn::core::trainer::{IterationEvent, Trainer};
use qn::image::{ascii, datasets, metrics};
use std::thread;

fn main() {
    let data = datasets::paper_binary_16(25);
    let config = NetworkConfig::paper_default().with_iterations(300);
    println!(
        "training: N={}, d={}, l_C={}, l_R={}, {} iterations, seed {}",
        config.dim,
        config.compressed_dim,
        config.layers_c,
        config.layers_r,
        config.iterations,
        config.seed
    );

    // Stream events to a printer thread so the training loop never blocks
    // on stdout.
    let (tx, rx) = channel::bounded::<IterationEvent>(64);
    let printer = thread::spawn(move || {
        for ev in rx {
            if ev.iteration % 25 == 0 {
                println!(
                    "iter {:>4}: L_C = {:.3e}  L_R = {:.3e}  accuracy = {:.2}%",
                    ev.iteration, ev.loss_c.mean, ev.loss_r.mean, ev.accuracy
                );
            }
        }
    });

    let mut trainer = Trainer::new(config, &data).expect("valid configuration");
    let report = trainer
        .train_with_observer(|ev| {
            let _ = tx.send(ev);
        })
        .expect("training runs");
    drop(tx);
    printer.join().expect("printer thread exits cleanly");

    println!(
        "\nfinal: L_C = {:.2e}, L_R = {:.2e}, max accuracy {:.2}% (snap) / {:.2}% (binary)",
        report.final_compression_loss,
        report.final_reconstruction_loss,
        report.max_accuracy,
        report.max_accuracy_binary
    );

    // Show every image against its reconstruction (Fig. 4a vs 4b).
    let autoencoder = trainer.into_autoencoder();
    let mut worst = (100.0_f64, 0usize);
    for (i, img) in data.iter().enumerate() {
        let recon = autoencoder.roundtrip_image(img).expect("roundtrip");
        let acc = metrics::pixel_accuracy(&recon.snapped(), img, 0.01);
        if acc < worst.0 {
            worst = (acc, i);
        }
        if i < 3 {
            println!(
                "sample {i:>2} ({acc:.1}%):\n{}",
                ascii::render_row(&[img, &recon.snapped()], "  →  ")
            );
        }
    }
    println!("worst sample: #{} at {:.1}%", worst.1, worst.0);
}
