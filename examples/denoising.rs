//! Extension application: denoising by projection.
//!
//! A quantum autoencoder trained on clean images maps *any* input onto
//! the learned d-dimensional subspace, so corrupted inputs are pulled
//! back towards the data manifold — the same mechanism the sparse-coding
//! literature uses for denoising (paper refs [7], [8]).
//!
//! Run with: `cargo run --release --example denoising`

use qn::core::config::NetworkConfig;
use qn::core::trainer::Trainer;
use qn::image::{ascii, datasets, metrics, noise};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = datasets::paper_binary_16(25);
    let mut trainer = Trainer::new(NetworkConfig::paper_default().with_iterations(300), &data)
        .expect("valid configuration");
    trainer.train().expect("training runs");
    let ae = trainer.into_autoencoder();

    let mut rng = StdRng::seed_from_u64(2024);
    println!("flip-probability sweep over the 25 training images:\n");
    println!("p      noisy acc   denoised acc");
    for p in [0.05, 0.1, 0.2, 0.3] {
        let mut noisy_acc = 0.0;
        let mut denoised_acc = 0.0;
        for img in &data {
            let noisy = noise::salt_and_pepper(img, p, &mut rng);
            noisy_acc += metrics::pixel_accuracy(&noisy, img, 0.01);
            let denoised = ae
                .roundtrip_image(&noisy)
                .expect("roundtrip")
                .thresholded(0.5);
            denoised_acc += metrics::pixel_accuracy(&denoised, img, 0.01);
        }
        noisy_acc /= data.len() as f64;
        denoised_acc /= data.len() as f64;
        println!("{p:<5} {noisy_acc:>8.2}%   {denoised_acc:>10.2}%");
    }

    // Show one example visually.
    let img = &data[4];
    let noisy = noise::salt_and_pepper(img, 0.2, &mut rng);
    let denoised = ae
        .roundtrip_image(&noisy)
        .expect("roundtrip")
        .thresholded(0.5);
    println!("\noriginal / corrupted (p = 0.2) / denoised:");
    println!("{}", ascii::render_row(&[img, &noisy, &denoised], "   "));
}
