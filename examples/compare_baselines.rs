//! Compare the quantum network against every classical baseline in the
//! workspace on the same dataset: CSC (the paper's comparison), PCA
//! (ref [11]'s classical content) and plain low-rank SVD.
//!
//! Run with: `cargo run --release --example compare_baselines`

use qn::classical::csc::{CscConfig, CscPipeline, SparseCoder};
use qn::classical::pca::Pca;
use qn::classical::svd_compress;
use qn::core::config::NetworkConfig;
use qn::core::trainer::Trainer;
use qn::image::{datasets, metrics, GrayImage};

fn binary_accuracy(recons: &[GrayImage], targets: &[GrayImage]) -> f64 {
    let binarised: Vec<GrayImage> = recons.iter().map(|r| r.thresholded(0.5)).collect();
    metrics::mean_pixel_accuracy(&binarised, targets, 0.01)
}

fn main() {
    // The hard dataset keeps every method below 100 % so the ordering is
    // visible.
    let data = datasets::paper_binary_16_hard(25);
    println!(
        "dataset: 25 binary 4×4 images, rank-4 energy {:.3} (not exactly compressible)\n",
        datasets::rank_energy(&data, 4)
    );

    // Quantum network.
    let mut qn_trainer =
        Trainer::new(NetworkConfig::paper_default(), &data).expect("valid configuration");
    let qn_report = qn_trainer.train().expect("training runs");
    let ae = qn_trainer.into_autoencoder();
    let qn_recons: Vec<GrayImage> = data
        .iter()
        .map(|img| ae.roundtrip_image(img).expect("roundtrip"))
        .collect();

    // CSC with the paper-faithful ℓ₁ coder and with the stronger OMP coder.
    let mut csc_l1 = CscPipeline::new(CscConfig::paper_default(), &data);
    csc_l1.train();
    let mut csc_omp = CscPipeline::new(
        CscConfig {
            coder: SparseCoder::Omp,
            ..CscConfig::paper_default()
        },
        &data,
    );
    csc_omp.train();

    // PCA at the same d = 4.
    let samples: Vec<Vec<f64>> = data.iter().map(|i| i.to_vector()).collect();
    let pca = Pca::fit(&samples, 4).expect("pca fits");
    let pca_recons: Vec<GrayImage> = samples
        .iter()
        .zip(&data)
        .map(|(x, img)| {
            GrayImage::from_pixels(img.width(), img.height(), pca.roundtrip(x))
                .expect("dims preserved")
        })
        .collect();

    // SVD floor at rank 4.
    let (svd_recons, svd_err) = svd_compress::compress_dataset(&data, 4).expect("svd runs");

    println!("method                 binary-accuracy   mse");
    let rows: Vec<(&str, Vec<GrayImage>)> = vec![
        ("quantum network", qn_recons),
        ("CSC (FISTA, paper)", csc_l1.reconstruct_images()),
        ("CSC (OMP, strong)", csc_omp.reconstruct_images()),
        ("PCA d=4", pca_recons),
        ("SVD rank-4 floor", svd_recons),
    ];
    for (name, recons) in &rows {
        let acc = binary_accuracy(recons, &data);
        let mse: f64 = recons
            .iter()
            .zip(&data)
            .map(|(r, t)| metrics::mse(r, t))
            .sum::<f64>()
            / data.len() as f64;
        println!("{name:<22} {acc:>7.2}%          {mse:.5}");
    }
    println!(
        "\nQN training: {:.2}s, final L_C {:.3e} (PCA/SVD bound on this set: {:.3e} per element)",
        qn_report.train_seconds,
        qn_report.final_compression_loss,
        svd_err / (25.0 * 16.0)
    );
    println!(
        "note: the QN is a *global rank-4* model like PCA/SVD, so those three \
         agree; CSC's per-sample atom selection is a union-of-subspaces model \
         and can beat rank-4 methods on incompressible data."
    );
}
