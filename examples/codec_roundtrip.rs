//! The codec end to end: distill a model from an image, save it, write
//! a `.qnc` container, decode it back, and report quality and size —
//! the programmatic equivalent of
//! `qnc train && qnc compress && qnc decompress`.
//!
//! Run with: `cargo run --release --example codec_roundtrip`

use qn::codec::{model, Codec, CodecOptions};
use qn::image::{datasets, metrics, pgm};

fn main() {
    // A 128×96 grayscale test image (smooth blob structure).
    let img = datasets::grayscale_blobs(1, 128, 96, 42).remove(0);
    println!(
        "input: {}x{} px ({} bytes raw)",
        img.width(),
        img.height(),
        img.len()
    );

    // A PCA-spectral model fit to the image's own 4×4 tiles, keeping
    // d = 8 of 16 amplitudes per tile.
    let codec = Codec::spectral_for_image(&img, 4, 8).expect("spectral model");
    println!(
        "model: N={}, d={}, id {:#018x}",
        codec.model().dim(),
        codec.model().compression.compressed_dim(),
        codec.model_id()
    );

    // Model persistence is bit-exact: save → load → identical bytes.
    let dir = std::env::temp_dir().join("qn_codec_roundtrip_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let model_path = dir.join("model.qnm");
    model::save_model(&model_path, codec.model()).expect("save model");
    let reloaded = model::load_model(&model_path).expect("load model");
    assert_eq!(
        reloaded.export_parameters(),
        codec.model().export_parameters(),
        "persistence must be bit-exact"
    );
    println!(
        "model file: {} bytes at {}",
        std::fs::metadata(&model_path).unwrap().len(),
        model_path.display()
    );

    // Encode at three bit depths; decode and score each.
    for bits in [4u8, 6, 8] {
        let opts = CodecOptions {
            bits,
            inline_model: false,
            ..CodecOptions::default()
        };
        let (bytes, stats) = codec.encode_image_with_stats(&img, &opts).expect("encode");
        let back = codec.decode_bytes(&bytes).expect("decode").clamped();
        println!(
            "{bits}-bit latents: {:>6} bytes  {:.3} bpp  ratio {:.2}x  PSNR {:.2} dB  SSIM {:.4}",
            stats.container_bytes,
            stats.bits_per_pixel,
            stats.ratio(),
            metrics::psnr(&img, &back),
            metrics::ssim(&img, &back),
        );
    }

    // The standalone container: model embedded, decodes with no state.
    let (bytes, stats) = codec
        .encode_image_with_stats(&img, &CodecOptions::default())
        .expect("encode standalone");
    let back = qn::codec::decode_standalone(&bytes).expect("standalone decode");
    let qnc_path = dir.join("image.qnc");
    std::fs::write(&qnc_path, &bytes).expect("write container");
    let rt_path = dir.join("roundtrip.pgm");
    pgm::write_pgm(&back.clamped(), &rt_path).expect("write pgm");
    println!(
        "standalone .qnc (inline model): {} bytes, ratio {:.2}x -> {}",
        stats.container_bytes,
        stats.ratio(),
        qnc_path.display()
    );
    println!("reconstruction -> {}", rt_path.display());
}
