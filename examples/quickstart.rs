//! Quickstart: compress and reconstruct one image with a trained
//! quantum network, in ~30 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use qn::core::config::NetworkConfig;
use qn::core::trainer::Trainer;
use qn::image::{ascii, datasets};

fn main() {
    // The paper's data regime: 25 binary 4×4 images, N = 16 amplitudes.
    let data = datasets::paper_binary_16(25);

    // The paper's architecture: d = 4 compression channels, 12-layer
    // compression mesh, 14-layer reconstruction mesh.
    let config = NetworkConfig::paper_default().with_iterations(150);

    // Train both networks (Algorithm 1).
    let mut trainer = Trainer::new(config, &data).expect("valid configuration");
    let report = trainer.train().expect("training runs");
    println!(
        "trained {} iterations in {:.2}s — L_C = {:.2e}, L_R = {:.2e}, binary accuracy {:.1}%",
        trainer.config().iterations,
        report.train_seconds,
        report.final_compression_loss,
        report.final_reconstruction_loss,
        report.max_accuracy_binary,
    );

    // Use the trained autoencoder on an image.
    let autoencoder = trainer.into_autoencoder();
    let image = &data[7];
    let (kept, norm) = autoencoder
        .compressed_representation(image.pixels())
        .expect("image encodes");
    println!(
        "compressed 16 pixels → {} amplitudes + 1 norm (ratio {:.2})",
        kept.len(),
        autoencoder.compression_ratio()
    );
    println!("compressed amplitudes: {kept:.3?}, norm {norm:.3}");

    let reconstruction = autoencoder.roundtrip_image(image).expect("roundtrip");
    println!("\ninput → reconstruction:");
    println!(
        "{}",
        ascii::render_row(&[image, &reconstruction.thresholded(0.5)], "   →   ")
    );
}
