//! Extension application: compressing *quantum* states (not encoded
//! classical data) — the paper's closing ambition: "we expect they could
//! directly solve the problem of compression and recovery of known or
//! unknown quantum states".
//!
//! A family of 3-qubit states living in a 2-dimensional subspace is
//! compressed to d = 2 amplitudes and recovered with near-unit fidelity;
//! phase-carrying states are handled by the complex network.
//!
//! Run with: `cargo run --release --example quantum_states`

use qn::core::complexnet::ComplexNetwork;
use qn::core::compression::CompressionNetwork;
use qn::core::config::{CompressionTargetKind, SubspaceKind};
use qn::core::gradient::{loss_and_gradient, GradientMethod};
use qn::core::reconstruction::ReconstructionNetwork;
use qn::linalg::vector;
use qn::photonic::Mesh;
use qn::sim::complex::Complex64;
use qn::sim::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- Part 1: real states in a hidden 2-dim subspace of C^8. ---
    let mut rng = StdRng::seed_from_u64(7);
    let basis_a = {
        let mut v = qn::linalg::random::gaussian_vec(8, &mut rng);
        vector::normalize(&mut v);
        v
    };
    let basis_b = {
        // Orthogonalise against basis_a.
        let mut v = qn::linalg::random::gaussian_vec(8, &mut rng);
        let ip = vector::dot(&v, &basis_a);
        vector::axpy(-ip, &basis_a, &mut v);
        vector::normalize(&mut v);
        v
    };
    let states: Vec<Vec<f64>> = (0..12)
        .map(|_| {
            let t: f64 = rng.random::<f64>() * std::f64::consts::TAU;
            let mut s = vec![0.0; 8];
            vector::axpy(t.cos(), &basis_a, &mut s);
            vector::axpy(t.sin(), &basis_b, &mut s);
            s
        })
        .collect();

    // Train a compression mesh with the trash penalty onto d = 2.
    let mut comp = CompressionNetwork::new(
        Mesh::random_small(8, 8, 0.3, &mut rng),
        2,
        SubspaceKind::KeepLast,
        CompressionTargetKind::TrashPenalty,
    )
    .expect("valid network");
    for _ in 0..400 {
        let (_, grad) = comp.loss_and_gradient(&states, GradientMethod::Analytic);
        let thetas: Vec<f64> = comp
            .mesh()
            .thetas()
            .iter()
            .zip(&grad)
            .map(|(t, g)| t - 0.05 * g)
            .collect();
        comp.mesh_mut().set_thetas(&thetas);
    }
    let recon = ReconstructionNetwork::from_reversed_compression(&comp, 8);
    let mut worst_fidelity: f64 = 1.0;
    for s in &states {
        let out = recon.reconstruct(&comp.compress(s));
        let sv_in = StateVector::from_real(s).expect("8 amplitudes");
        let sv_out = StateVector::from_real(&out).expect("8 amplitudes");
        worst_fidelity = worst_fidelity.min(sv_in.fidelity(&sv_out).expect("same dims"));
    }
    println!("3-qubit states in a hidden 2-dim subspace, compressed 8 → 2 amplitudes:");
    println!(
        "  leakage after training: {:.2e}   worst recovery fidelity: {:.6}",
        comp.mean_leakage(&states),
        worst_fidelity
    );

    // Check the loss_and_gradient API directly once (exactness cross-check).
    let residual = |i: usize, out: &[f64], buf: &mut [f64]| comp.residual(i, out, buf);
    let (loss, _) = loss_and_gradient(
        comp.mesh(),
        &states,
        &residual,
        GradientMethod::CentralDifference { delta: 1e-6 },
    );
    println!("  central-difference loss agrees: {loss:.2e}");

    // --- Part 2: phase-carrying states need the complex network. ---
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let c = Complex64::new;
    let inputs = vec![
        vec![c(s, 0.0), c(0.0, s), c(0.0, 0.0), c(0.0, 0.0)],
        vec![c(s, 0.0), c(0.0, -s), c(0.0, 0.0), c(0.0, 0.0)],
    ];
    // Target: rotate the phase onto the real axis (a "recovery" map).
    let targets = vec![
        vec![c(s, 0.0), c(s, 0.0), c(0.0, 0.0), c(0.0, 0.0)],
        vec![c(s, 0.0), c(-s, 0.0), c(0.0, 0.0), c(0.0, 0.0)],
    ];
    let mut net = ComplexNetwork::random(4, 3, 0.3, &mut rng).expect("valid network");
    let curve = net.fit_pairs(&inputs, &targets, 0.15, 300);
    println!(
        "\ncomplex 2-qubit phase-recovery task: loss {:.4} → {:.2e} in {} iterations",
        curve[0],
        curve.last().expect("non-empty"),
        curve.len()
    );
}
