//! # qn — quantum-network image compression & reconstruction
//!
//! Umbrella crate re-exporting the whole workspace. This is a full
//! reproduction of *"Image Compression and Reconstruction Based on Quantum
//! Network"* (Ji et al., IPPS 2024, arXiv:2404.11994): classical images are
//! amplitude-encoded into quantum states, compressed by a trainable mesh of
//! beam-splitter (Givens) rotations plus a subspace projection, and
//! reconstructed by a second trainable mesh.
//!
//! ## Crates
//!
//! - [`core`](qn_core) — the paper's contribution: encoding, compression /
//!   reconstruction networks, losses, gradients, the training loop.
//! - [`backend`](qn_backend) — mesh execution backends: scalar reference
//!   dispatch and batched tile panels behind one bit-compatible trait.
//! - [`sim`](qn_sim) — hand-rolled state-vector simulator.
//! - [`photonic`](qn_photonic) — interferometer meshes, Clements/Reck
//!   decompositions.
//! - [`linalg`](qn_linalg) — dense linear algebra (QR, Jacobi SVD/eig, LU).
//! - [`classical`](qn_classical) — the CSC sparse-coding baseline and PCA.
//! - [`image`](qn_image) — images, datasets, metrics, PGM/ASCII IO.
//! - [`codec`](qn_codec) — the end-to-end file codec: model persistence
//!   (`.qnm`), quantized latent bitstreams, the `.qnc` container, tiled
//!   encode/decode.
//! - [`serve`](qn_serve) — the batching codec server: binary wire
//!   protocol, cross-request tile batching, the content-addressed model
//!   zoo, and the `qnc` CLI (offline commands plus `serve`/`remote`).
//! - [`eval`](qn_eval) — the rate–distortion evaluation subsystem:
//!   dataset registry, operating-point sweeps, classical baselines at
//!   matched rates, stable quality reports and CI quality gates.
//! - [`metrics`](qn_metrics) — zero-dependency telemetry core: atomic
//!   counters/gauges, log₂ latency histograms with percentile
//!   estimation, byte-stable JSON and Prometheus-style exposition.
//! - [`trace`](qn_trace) — zero-dependency span tracing: per-request
//!   trees of named, timed spans with attributes, recent/slow capture
//!   buffers, byte-stable JSON and ASCII tree rendering.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the one-paragraph version:
//!
//! ```
//! use qn::core::config::NetworkConfig;
//! use qn::core::trainer::Trainer;
//! use qn::image::datasets;
//!
//! // 25 binary 4×4 images, exactly the paper's data regime.
//! let data = datasets::paper_binary_16(25);
//! let cfg = NetworkConfig::paper_default().with_iterations(30);
//! let mut trainer = Trainer::new(cfg, &data).unwrap();
//! let report = trainer.train().unwrap();
//! assert!(report.final_reconstruction_loss < 1.0);
//! ```

pub use qn_backend as backend;
pub use qn_classical as classical;
pub use qn_codec as codec;
pub use qn_core as core;
pub use qn_eval as eval;
pub use qn_image as image;
pub use qn_linalg as linalg;
pub use qn_metrics as metrics;
pub use qn_photonic as photonic;
pub use qn_serve as serve;
pub use qn_sim as sim;
pub use qn_trace as trace;
